"""Tests for the analysis layer: the dataflow solver, the nullness /
range / liveness analyses, the lint driver with its structured
diagnostics, and the per-pass invariant checking in the pipeline."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    SetLattice,
    solve,
)
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    Severity,
    count_by_severity,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.lint import (
    LINT_RULES,
    lint_function,
    lint_module,
    lint_report,
)
from repro.analysis.liveness import analyze_liveness, observable_values
from repro.analysis.nullness import analyze_nullness, is_intrinsically_nonnull
from repro.analysis.range import INT_MAX, INT_MIN, analyze_ranges
from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.opt import pipeline as opt_pipeline
from repro.opt.pipeline import (
    ALL_PASSES,
    PassCheckError,
    optimize_function,
    optimize_module,
)
from repro.pipeline import compile_to_module
from repro.ssa import ir
from repro.ssa.cst import RBasic, RSeq, derive_cfg
from repro.ssa.ir import Const, Function, Module, Prim, Term
from repro.tsa.verifier import (
    VerifyError,
    collect_diagnostics,
    verify_function,
    verify_module,
)
from repro.typesys.ops import lookup_op
from repro.typesys.table import TypeTable
from repro.typesys.types import INT, ArrayType
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World

from repro.fuzz.gen import program_strategy


def program():
    """Source-text strategy over the shared fuzz grammar."""
    return program_strategy().map(lambda generated: generated.source)


# ---------------------------------------------------------------------------
# hand-construction helpers (same idiom as tests/test_verifier.py)
# ---------------------------------------------------------------------------

@pytest.fixture
def env():
    world = World()
    point = ClassInfo("Point", "java.lang.Object")
    point.add_field(FieldInfo("x", INT))
    world.define_class(point)
    world.link()
    table = TypeTable(world)
    table.declare_class(point)
    table.intern(ArrayType(INT))
    module = Module(world, table)
    module.classes.append(point)
    return world, table, module, point


def single_block_function(point, name="f", return_type=INT):
    method = MethodInfo(name, [], return_type, is_static=True)
    point.add_method(method)
    function = Function(method, point)
    entry = function.new_block()
    function.entry = entry
    return function, entry


def finish(function, entry, term):
    entry.term = term
    function.cst = RSeq([RBasic(entry)])
    derive_cfg(function)
    return function


def fn_of(source, class_name, method, optimize=False):
    module = compile_to_module(source, optimize=optimize)
    return module, module.function_named(class_name, method)


def instrs_of(function, kind):
    return [i for b in function.reachable_blocks() for i in b.instrs
            if isinstance(i, kind)]


# ---------------------------------------------------------------------------
# diagnostics infrastructure
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_code_table_conventions(self):
        for code, (severity, description) in DIAGNOSTIC_CODES.items():
            assert code.startswith("STSA-")
            family, number = code[5:].rsplit("-", 1)
            assert family.isalpha() and family.isupper()
            assert len(number) == 3 and number.isdigit()
            assert severity in Severity.ORDER
            assert description
            # 0nn codes are rejections, 1nn codes are lint findings
            if number.startswith("0"):
                assert severity == Severity.ERROR, code
            else:
                assert severity != Severity.ERROR, code

    def test_code_table_matches_docs(self):
        docs = Path(__file__).resolve().parent.parent \
            / "docs" / "ANALYSIS.md"
        text = docs.read_text()
        for code in DIAGNOSTIC_CODES:
            assert code in text, f"{code} missing from docs/ANALYSIS.md"

    def test_severity_defaults_from_table(self):
        assert Diagnostic("STSA-CFG-101", "m").severity == Severity.WARNING
        assert Diagnostic("STSA-NULL-101", "m").severity == Severity.INFO
        assert Diagnostic("STSA-REF-001", "m").severity == Severity.ERROR
        # unknown codes default to error rather than hiding a failure
        assert Diagnostic("STSA-ZZZ-999", "m").severity == Severity.ERROR

    def test_as_dict_key_order_is_stable(self):
        d = Diagnostic("STSA-REF-001", "boom", function="C.m",
                       block=3, instr=7)
        assert list(d.as_dict()) == ["code", "severity", "function",
                                     "block", "instr", "message"]
        assert d.location() == "C.m:B3:v7"
        assert str(d) == "STSA-REF-001 error C.m:B3:v7: boom"

    def test_sort_orders_by_severity_then_location(self):
        info = Diagnostic("STSA-NULL-101", "m", function="a", block=0)
        warn = Diagnostic("STSA-CFG-101", "m", function="z", block=9)
        error = Diagnostic("STSA-REF-003", "m", function="m", block=5)
        assert sort_diagnostics([info, warn, error]) == [error, warn, info]
        counts = count_by_severity([info, warn, error])
        assert counts == {"error": 1, "warning": 1, "info": 1}
        assert has_errors([info, warn, error])
        assert not has_errors([info, warn])

    def test_verify_error_carries_location(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        late = Const(INT, 5)
        neg = Prim(lookup_op(INT, "neg"), [late])
        entry.append(neg)
        entry.append(late)  # defined after its use
        finish(function, entry, Term("return", neg))
        with pytest.raises(VerifyError) as excinfo:
            verify_function(module, function)
        error = excinfo.value
        assert error.code == "STSA-REF-001"
        assert error.function == function.name
        assert error.block == entry.id
        assert error.instr == neg.id
        assert "[STSA-REF-001]" in str(error)
        assert error.diagnostic.as_dict()["severity"] == "error"


# ---------------------------------------------------------------------------
# the generic worklist solver
# ---------------------------------------------------------------------------

DIAMOND = """
class D {
  static int go(boolean c) {
    int r = 1;
    if (c) { r = 2; } else { r = 3; }
    return r;
  }
}
"""


class _DefsSeen:
    """Toy forward may-analysis: ids of instructions seen on some path."""

    direction = FORWARD

    def boundary(self, function):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, fact):
        return fact | {i.id for i in block.instrs}


class TestDataflowSolver:
    def test_forward_reaches_fixpoint_on_diamond(self):
        module, fn = fn_of(DIAMOND, "D", "go")
        result = solve(fn, _DefsSeen())
        blocks = list(fn.reachable_blocks())
        exit_block = blocks[-1]
        # everything defined anywhere reaches the join's exit
        all_ids = {i.id for b in blocks for i in b.instrs}
        assert all_ids <= result.out_fact(exit_block)
        # the entry's in-fact is the boundary
        assert result.in_fact(fn.entry) == frozenset()

    def test_set_lattice_union_and_intersect(self):
        union = SetLattice(mode="union")
        inter = SetLattice(mode="intersect")
        a, b = frozenset({1, 2}), frozenset({2, 3})
        assert union.join(a, b) == {1, 2, 3}
        assert inter.join(a, b) == {2}

    def test_backward_liveness_on_straightline(self):
        module, fn = fn_of(
            "class S { static int go(int x) { int y = x + 1;"
            " return y; } }", "S", "go")
        live = analyze_liveness(fn)
        (add,) = instrs_of(fn, ir.Prim)
        # a single-block function defines everything locally: nothing is
        # live across its entry, and nothing survives the return
        assert live.live_in(fn.entry) == frozenset()
        assert not live.is_live_out(add, fn.entry)

    def test_loop_terminates_with_widening(self):
        # an unbounded counter forces interval widening to INT_MAX
        module, fn = fn_of(
            "class W { static int go(int n) { int i = 0;"
            " while (i < n) { i = i + 1; } return i; } }", "W", "go")
        facts = analyze_ranges(fn)  # must terminate
        phis = [p for b in fn.reachable_blocks() for p in b.phis]
        assert phis
        for b in fn.reachable_blocks():
            fact = facts.fact_at_entry(b)
            for vid, (lo, hi) in fact.ranges.items():
                assert INT_MIN <= lo <= hi <= INT_MAX


# ---------------------------------------------------------------------------
# nullness analysis
# ---------------------------------------------------------------------------

NULL_DIAMOND = """
class P {
  int f;
  static int go(P p, boolean c) {
    int r = 0;
    if (c) { r = p.f; } else { r = p.f + 1; }
    return r + p.f;
  }
}
"""


class TestNullness:
    def test_diamond_post_join_check_is_redundant(self):
        module, fn = fn_of(NULL_DIAMOND, "P", "go")
        facts = analyze_nullness(fn)
        checks = instrs_of(fn, ir.NullCheck)
        assert len(checks) == 3
        redundant = [c for c in checks
                     if facts.is_nonnull_before(c.operands[0], c)]
        # the check after the join is dominated by a check in *each* arm
        assert len(redundant) == 1

    def test_cse_alone_does_not_remove_the_flagged_check(self):
        """Acceptance criterion: lint flags a NullCheck on the
        unoptimized module that CSE cannot eliminate (neither arm's
        check dominates the post-join use)."""
        module, fn = fn_of(NULL_DIAMOND, "P", "go")
        flagged = {d.instr for d in lint_function(module, fn)
                   if d.code == "STSA-NULL-101"}
        assert flagged
        optimize_function(fn, ["cse"], module=module,
                          check_after_each_pass=True)
        surviving = {c.id for c in instrs_of(fn, ir.NullCheck)}
        assert flagged <= surviving

    def test_branch_refinement_on_null_comparison(self):
        module, fn = fn_of(
            "class N { int f; static int go(N p) { int r = 0;"
            " if (p != null) { r = p.f; } return r; } }", "N", "go")
        facts = analyze_nullness(fn)
        (check,) = instrs_of(fn, ir.NullCheck)
        assert facts.is_nonnull_before(check.operands[0], check)

    def test_equality_false_arm_refines(self):
        module, fn = fn_of(
            "class N { int f; static int go(N p) { int r = 0;"
            " if (p == null) { r = 1; } else { r = p.f; }"
            " return r; } }", "N", "go")
        facts = analyze_nullness(fn)
        (check,) = instrs_of(fn, ir.NullCheck)
        assert facts.is_nonnull_before(check.operands[0], check)

    def test_unguarded_parameter_is_not_refined(self):
        module, fn = fn_of(
            "class N { int f; static int go(N p) { return p.f; } }",
            "N", "go")
        facts = analyze_nullness(fn)
        (check,) = instrs_of(fn, ir.NullCheck)
        assert not facts.is_nonnull_before(check.operands[0], check)

    def test_new_is_intrinsically_nonnull(self):
        module, fn = fn_of(
            "class N { int f; static int go() { N p = new N();"
            " return p.f; } }", "N", "go")
        (new,) = instrs_of(fn, ir.New)
        assert is_intrinsically_nonnull(new)
        # ...so the nullcheck CSE would remove anyway is also flagged
        facts = analyze_nullness(fn)
        (check,) = instrs_of(fn, ir.NullCheck)
        assert facts.is_nonnull_before(check.operands[0], check)

    def test_facts_do_not_leak_into_exception_handler(self):
        module, fn = fn_of(
            "class N { int f; static int go(N p) { int r = 0;"
            " try { r = p.f; } catch (RuntimeException e) { r = p.f; }"
            " return r; } }", "N", "go")
        facts = analyze_nullness(fn)
        checks = instrs_of(fn, ir.NullCheck)
        assert len(checks) == 2
        # the handler's own check re-tests p: the try's check may have
        # been the very instruction that trapped
        handler_check = checks[1]
        assert not facts.is_nonnull_before(handler_check.operands[0],
                                           handler_check)


# ---------------------------------------------------------------------------
# range analysis
# ---------------------------------------------------------------------------

class TestRange:
    def test_const_index_under_const_length(self):
        module, fn = fn_of(
            "class A { static int go() { int[] a = new int[10];"
            " return a[3]; } }", "A", "go")
        facts = analyze_ranges(fn)
        checks = instrs_of(fn, ir.IdxCheck)
        assert checks
        assert all(facts.idxcheck_redundant(c) for c in checks)

    def test_symbolic_guard_against_length(self):
        module, fn = fn_of(
            "class A { static int go(int[] a, int i) { int r = 0;"
            " if (0 <= i) { if (i < a.length) { r = a[i]; } }"
            " return r; } }", "A", "go")
        facts = analyze_ranges(fn)
        (check,) = instrs_of(fn, ir.IdxCheck)
        assert facts.idxcheck_redundant(check)

    def test_unguarded_index_is_not_redundant(self):
        module, fn = fn_of(
            "class A { static int go(int[] a, int i) {"
            " return a[i]; } }", "A", "go")
        facts = analyze_ranges(fn)
        (check,) = instrs_of(fn, ir.IdxCheck)
        assert not facts.idxcheck_redundant(check)

    def test_half_guarded_index_is_not_redundant(self):
        # only the upper bound is established; i could still be negative
        module, fn = fn_of(
            "class A { static int go(int[] a, int i) { int r = 0;"
            " if (i < a.length) { r = a[i]; } return r; } }", "A", "go")
        facts = analyze_ranges(fn)
        (check,) = instrs_of(fn, ir.IdxCheck)
        assert not facts.idxcheck_redundant(check)

    def test_repeated_access_second_check_redundant(self):
        module, fn = fn_of(
            "class A { static int go(int[] a, int i) {"
            " return a[i] + a[i]; } }", "A", "go")
        facts = analyze_ranges(fn)
        checks = instrs_of(fn, ir.IdxCheck)
        assert len(checks) == 2
        assert not facts.idxcheck_redundant(checks[0])
        assert facts.idxcheck_redundant(checks[1])

    def test_interval_arithmetic_on_constants(self):
        module, fn = fn_of(
            "class A { static int go() { int x = 4; int y = x + 2;"
            " int[] a = new int[10]; return a[y]; } }", "A", "go")
        facts = analyze_ranges(fn)
        (check,) = instrs_of(fn, ir.IdxCheck)
        assert facts.interval_before(check.index, check) == (6, 6)
        assert facts.idxcheck_redundant(check)


# ---------------------------------------------------------------------------
# liveness + dead-phi rule
# ---------------------------------------------------------------------------

DEAD_PHI = """
class D {
  static int go(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + 1; }
    return 7;
  }
}
"""


class TestLivenessAndDeadPhi:
    def test_loop_carried_accumulator_with_no_use_is_dead(self):
        module, fn = fn_of(DEAD_PHI, "D", "go")
        observable = observable_values(fn)
        phis = [p for b in fn.reachable_blocks() for p in b.phis]
        dead = [p for p in phis if p.id not in observable]
        assert dead  # the s-phi feeds only itself
        codes = {d.instr: d.code for d in lint_function(module, fn)}
        assert all(codes.get(p.id) == "STSA-PHI-101" for p in dead)

    def test_dce_agrees_with_the_dead_phi_rule(self):
        module, fn = fn_of(DEAD_PHI, "D", "go")
        flagged = {d.instr for d in lint_function(module, fn)
                   if d.code == "STSA-PHI-101"}
        assert flagged
        optimize_function(fn, ["dce"], module=module,
                          check_after_each_pass=True)
        remaining = {p.id for b in fn.reachable_blocks()
                     for p in b.phis}
        assert not (flagged & remaining)

    def test_live_value_is_not_flagged(self):
        module, fn = fn_of(
            "class D { static int go(int n) { int s = 0;"
            " for (int i = 0; i < n; i = i + 1) { s = s + 1; }"
            " return s; } }", "D", "go")
        observable = observable_values(fn)
        phis = [p for b in fn.reachable_blocks() for p in b.phis]
        assert all(p.id in observable for p in phis)
        assert not [d for d in lint_function(module, fn)
                    if d.code == "STSA-PHI-101"]


# ---------------------------------------------------------------------------
# the verifier in collect mode: locations, codes, collect-all
# ---------------------------------------------------------------------------

class TestCollectDiagnostics:
    def test_collect_matches_fail_fast_code(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        value = Const(INT, 1)  # never appended: undefined reference
        finish(function, entry, Term("return", value))
        diagnostics = collect_diagnostics(module, function)
        assert has_errors(diagnostics)
        with pytest.raises(VerifyError) as excinfo:
            verify_function(module, function)
        assert excinfo.value.code in {d.code for d in diagnostics}

    def test_collect_reports_multiple_independent_errors(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        ok = Const(INT, 1)
        entry.append(ok)
        entry.term = Term("branch", ok)  # TYP-005: not a boolean
        other = function.new_block()
        stray = Const(INT, 2)  # STR-001: const outside the entry
        other.append(stray)
        other.term = Term("return", stray)
        join = function.new_block()
        join.term = Term("return", ok)
        from repro.ssa.cst import RIf
        function.cst = RSeq([RIf(entry, RBasic(other), None),
                             RBasic(join)])
        derive_cfg(function)
        codes = {d.code for d in collect_diagnostics(module, function)}
        assert {"STSA-TYP-005", "STSA-STR-001"} <= codes

    def test_unreachable_block_warns_but_verifies(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        value = Const(INT, 1)
        entry.append(value)
        finish(function, entry, Term("return", value))
        orphan = function.new_block()
        orphan.term = Term("return", value)
        verify_function(module, function)  # fail-fast tolerates it
        diagnostics = collect_diagnostics(module, function)
        assert not has_errors(diagnostics)
        (warning,) = [d for d in diagnostics
                      if d.code == "STSA-CFG-101"]
        assert warning.severity == Severity.WARNING
        assert warning.block == orphan.id

    def test_cse_without_cleanup_surfaces_stranded_dispatch(self):
        """Satellite: a dispatch block stranded by check elimination was
        previously skipped in silence; collect mode now reports it."""
        source = (
            "class T { static int go(P p) { int r = 0;"
            " try { r = p.f; r = r + p.f; }"
            " catch (RuntimeException e) { r = -1; } return r; } }"
            "\nclass P { int f; }")
        module = compile_to_module(source.replace("\n", " "))
        optimize_module(module, passes=["constprop", "safephi", "cse"],
                        check_after_each_pass=True)
        verify_module(module)
        # cleanup was withheld, so any handler whose exception points
        # were all eliminated leaves an unreachable dispatch chain
        diagnostics = lint_module(module)
        assert not has_errors(diagnostics)

    def test_module_level_collect_covers_every_function(self):
        module, _ = fn_of(NULL_DIAMOND, "P", "go")
        assert collect_diagnostics(module) == []


class TestVerifierCodes:
    """Mutated modules exercising the structured code of each rule
    family (the full per-property matrix lives in test_verifier.py)."""

    def expect(self, module, function, code):
        with pytest.raises(VerifyError) as excinfo:
            verify_function(module, function)
        assert excinfo.value.code == code
        assert code in {d.code
                        for d in collect_diagnostics(module, function)}

    def test_ref_001_use_before_def(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        late = Const(INT, 5)
        neg = Prim(lookup_op(INT, "neg"), [late])
        entry.append(neg)
        entry.append(late)
        finish(function, entry, Term("return", neg))
        self.expect(module, function, "STSA-REF-001")

    def test_ref_003_undefined_value(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        ghost = Const(INT, 9)  # never placed in any block
        finish(function, entry, Term("return", ghost))
        self.expect(module, function, "STSA-REF-003")

    def test_cfg_family_missing_terminator(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        value = Const(INT, 1)
        entry.append(value)
        function.cst = RSeq([RBasic(entry)])
        # CST derivation may spot the hole first (CFG-001) or the
        # terminator rule may (CFG-002); both are CFG-family rejections
        with pytest.raises(VerifyError) as excinfo:
            verify_function(module, function)
        assert excinfo.value.code in {"STSA-CFG-001", "STSA-CFG-002"}

    def test_typ_001_wrong_plane(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        value = Const(INT, 1)
        entry.append(value)
        check = ir.NullCheck(point.type, value)  # nullcheck of an int
        entry.append(check)
        finish(function, entry, Term("return", value))
        self.expect(module, function, "STSA-TYP-001")

    def test_typ_003_wrong_arity(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        value = Const(INT, 1)
        entry.append(value)
        bad = Prim(lookup_op(INT, "add"), [value])  # add wants 2
        entry.append(bad)
        finish(function, entry, Term("return", bad))
        self.expect(module, function, "STSA-TYP-003")

    def test_str_001_const_outside_entry(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        value = Const(INT, 1)
        entry.append(value)
        entry.term = Term("fall")
        second = function.new_block()
        stray = Const(INT, 2)
        second.append(stray)
        second.term = Term("return", stray)
        function.cst = RSeq([RBasic(entry), RBasic(second)])
        derive_cfg(function)
        self.expect(module, function, "STSA-STR-001")

    def test_str_003_param_index_out_of_range(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        bogus = ir.Param(8, INT)
        entry.append(bogus)
        finish(function, entry, Term("return", bogus))
        self.expect(module, function, "STSA-STR-003")


# ---------------------------------------------------------------------------
# pipeline gating + per-pass invariant checking
# ---------------------------------------------------------------------------

class TestPipelineGating:
    def test_cleanup_is_a_selectable_pass(self):
        assert "cleanup" in ALL_PASSES

    def test_empty_pass_list_is_a_true_noop(self):
        source = corpus_source("Scanner")
        module = compile_to_module(source)
        before = module.instruction_count()
        shapes = {f.name: [(b.id, len(b.instrs), len(b.phis))
                           for b in f.blocks]
                  for f in module.functions.values()}
        stats = optimize_module(module, passes=())
        assert module.instruction_count() == before
        assert shapes == {f.name: [(b.id, len(b.instrs), len(b.phis))
                                   for b in f.blocks]
                          for f in module.functions.values()}
        for stat in stats:
            assert set(stat) == {"function"}  # no pass ran, no counters

    def test_single_pass_selections_self_repair(self):
        source = corpus_source("BinaryCode")
        for passes in (["constprop"], ["cse"], ["dce"], ["cleanup"],
                       ["cse", "dce"]):
            module = compile_to_module(source)
            optimize_module(module, passes=passes,
                            check_after_each_pass=True)
            verify_module(module)


class TestPassCheckError:
    def test_ill_formed_input_is_blamed_on_input(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        ghost = Const(INT, 9)
        finish(function, entry, Term("return", ghost))
        module.functions[function.name] = function
        with pytest.raises(PassCheckError) as excinfo:
            optimize_function(function, module=module,
                              check_after_each_pass=True)
        assert excinfo.value.pass_name == "input"
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostic.code == "STSA-PASS-001"

    def test_breaking_pass_is_blamed_by_name(self, monkeypatch):
        module, fn = fn_of(DIAMOND, "D", "go")

        def sabotage(function):
            for block in function.reachable_blocks():
                if block is not function.entry:
                    block.append(Const(INT, 99))  # STR-001 violation
                    return {"sabotaged": 1}
            return {}

        monkeypatch.setitem(opt_pipeline.PASS_FUNCTIONS, "dce", sabotage)
        with pytest.raises(PassCheckError) as excinfo:
            optimize_function(fn, ["constprop", "dce"], module=module,
                              check_after_each_pass=True)
        assert excinfo.value.pass_name == "dce"
        assert excinfo.value.diagnostics[0].code == "STSA-STR-001"
        assert "dce" in str(excinfo.value)

    def test_check_requires_module(self):
        module, fn = fn_of(DIAMOND, "D", "go")
        with pytest.raises(ValueError):
            optimize_function(fn, check_after_each_pass=True)


# per-pass verification across every corpus artifact (plain + optimized:
# the same 20 modules the codec and analysis benchmarks use)
@pytest.mark.parametrize("name", CORPUS_PROGRAMS)
def test_per_pass_invariants_hold_on_corpus(name):
    source = corpus_source(name)
    plain = compile_to_module(source)
    assert optimize_module(plain, check_after_each_pass=True)
    optimized = compile_to_module(source, optimize=True)
    # re-optimising an already optimised module must also stay sound
    assert optimize_module(optimized, check_after_each_pass=True)
    for module in (plain, optimized):
        verify_module(module)
        assert not has_errors(lint_module(module))


@given(program())
@settings(max_examples=15, deadline=None)
def test_per_pass_invariants_hold_on_generated_programs(source):
    module = compile_to_module(source)
    optimize_module(module, check_after_each_pass=True)
    verify_module(module)
    assert not has_errors(lint_module(module))


# ---------------------------------------------------------------------------
# lint driver + report schema
# ---------------------------------------------------------------------------

class TestLintDriver:
    def test_rule_registry_names(self):
        assert {"dead-phi", "redundant-nullcheck",
                "redundant-idxcheck"} <= set(LINT_RULES)

    def test_rule_selection(self):
        module, fn = fn_of(NULL_DIAMOND, "P", "go")
        only_null = lint_function(module, fn,
                                  rules=["redundant-nullcheck"],
                                  include_verifier=False)
        assert only_null
        assert {d.code for d in only_null} == {"STSA-NULL-101"}

    def test_report_schema_is_stable(self):
        module, fn = fn_of(NULL_DIAMOND, "P", "go")
        report = lint_report(lint_module(module))
        assert list(report) == ["schema", "counts", "diagnostics"]
        assert report["schema"] == "repro-lint/1"
        assert list(report["counts"]) == ["error", "warning", "info"]
        assert report["diagnostics"]
        for entry in report["diagnostics"]:
            assert list(entry) == ["code", "severity", "function",
                                   "block", "instr", "message"]
            assert entry["code"] in DIAGNOSTIC_CODES
        # the report survives a JSON round trip with key order intact
        recycled = json.loads(json.dumps(report))
        assert recycled == report

    def test_diagnostics_sorted_in_report(self):
        module, fn = fn_of(NULL_DIAMOND, "P", "go")
        diagnostics = lint_module(module)
        ranked = [Severity.rank(d.severity) for d in diagnostics]
        assert ranked == sorted(ranked)


class TestLintCli:
    @pytest.fixture
    def demo(self, tmp_path):
        path = tmp_path / "Demo.java"
        path.write_text(NULL_DIAMOND)
        return str(path)

    def test_lint_json_schema(self, demo, capsys):
        from repro.cli import main
        assert main(["lint", demo, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro-lint/1"
        codes = [d["code"] for d in report["diagnostics"]]
        assert "STSA-NULL-101" in codes
        for entry in report["diagnostics"]:
            assert list(entry) == ["code", "severity", "function",
                                   "block", "instr", "message"]

    def test_lint_human_output(self, demo, capsys):
        from repro.cli import main
        assert main(["lint", demo]) == 0
        out = capsys.readouterr().out
        assert "STSA-NULL-101" in out
        assert "0 error(s)" in out

    def test_lint_optimized_variant(self, demo, capsys):
        from repro.cli import main
        assert main(["lint", demo, "--optimize", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["error"] == 0

    def test_verify_prints_ok_with_diagnostics(self, tmp_path, capsys):
        from repro.cli import main
        source = tmp_path / "Demo.java"
        source.write_text(DIAMOND)
        wire = tmp_path / "Demo.stsa"
        assert main(["compile", str(source), "-o", str(wire)]) == 0
        capsys.readouterr()
        assert main(["verify", str(wire)]) == 0
        assert "OK:" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# the analysis benchmark report
# ---------------------------------------------------------------------------

class TestAnalysisBench:
    def test_report_shape_and_totals(self):
        from repro.bench.analysis import analysis_report
        report = analysis_report(programs=["BitSieve"], repeats=1)
        assert report["schema"] == "repro-analysis/1"
        assert [a["variant"] for a in report["artifacts"]] \
            == ["plain", "optimized"]
        for artifact in report["artifacts"]:
            assert artifact["program"] == "BitSieve"
            assert artifact["verify_ms"] >= 0
            assert artifact["lint_ms"] >= 0
            assert artifact["diagnostics"] \
                == sum(artifact["counts"].values())
            assert sum(artifact["codes"].values()) \
                == artifact["diagnostics"]
        totals = report["totals"]
        assert totals["artifacts"] == 2
        assert totals["errors"] == 0
        assert totals["diagnostics"] \
            == sum(a["diagnostics"] for a in report["artifacts"])
