"""SSA layer: CFG, dominators, and SafeTSA-form SSA construction.

The in-memory SSA produced here *is* the SafeTSA program (instructions on
type-separated register planes, structured by a Control Structure Tree);
the :mod:`repro.tsa` layer adds the dominator-relative ``(l, r)`` register
numbering and verification, and :mod:`repro.encode` externalises it.
"""

from repro.ssa import ir
from repro.ssa.cst import derive_cfg
from repro.ssa.dominators import (
    DominatorTree,
    compute_dominators,
    compute_dominators_lt,
)
from repro.ssa.construction import SsaBuilder, build_function
from repro.ssa.phi_pruning import prune_dead_phis

__all__ = [
    "ir",
    "derive_cfg",
    "DominatorTree",
    "compute_dominators",
    "compute_dominators_lt",
    "SsaBuilder",
    "build_function",
    "prune_dead_phis",
]
