"""The pass manager: declarative pipelines over registered passes.

A :class:`PassManager` is constructed from a pipeline spec (see
:func:`repro.driver.passes.parse_pass_spec`) and runs the selected
passes over functions in canonical slot order, producing one
:class:`~repro.driver.report.PassReport` per function with per-pass
wall-clock timing and statistics.

When an :class:`~repro.analysis.manager.AnalysisManager` is supplied,
passes consume cached analyses through it and the manager invalidates
each function's results after every pass according to the pass's
``preserves`` declaration (a pass that changed nothing preserves
everything -- see :meth:`repro.driver.passes.Pass.preserved_after`).

``check_after_each_pass`` keeps the PR-2 invariant machinery: the
function is verified before the first pass and re-verified after every
pass, and the first violation is attributed -- as a
:class:`~repro.driver.passes.PassCheckError` carrying the collected
diagnostics -- to the pass that introduced it.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.analysis.diagnostics import Severity
from repro.analysis.manager import AnalysisManager
from repro.driver.passes import (
    PASS_REGISTRY,
    PassCheckError,
    PassSpec,
    parse_pass_spec,
    run_step,
    spec_string,
)
from repro.driver.report import PassReport


class PassManager:
    """Runs a declaratively specified pipeline over functions."""

    def __init__(self, passes: PassSpec = None, *,
                 check_after_each_pass: bool = False):
        self.names: tuple[str, ...] = parse_pass_spec(passes)
        self.check_after_each_pass = check_after_each_pass

    @property
    def spec(self) -> str:
        """The canonical spec string of this pipeline."""
        return spec_string(self.names)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PassManager [{self.spec}]>"

    # ------------------------------------------------------------------

    def run_function(self, function, module=None,
                     analyses: Optional[AnalysisManager] = None) \
            -> PassReport:
        """Run the pipeline on one function; returns its report."""
        if self.check_after_each_pass and module is None:
            raise ValueError("check_after_each_pass requires module=")
        report = PassReport(function.name)
        if self.check_after_each_pass:
            self._check(module, function, "input", analyses)
        for name in self.names:
            start = perf_counter()
            stats = run_step(name, function, analyses)
            seconds = perf_counter() - start
            report.record(name, stats, seconds)
            if analyses is not None:
                preserved = PASS_REGISTRY[name].preserved_after(stats)
                if preserved is not None:
                    analyses.invalidate(function, preserved=preserved)
            if self.check_after_each_pass:
                self._check(module, function, name, analyses)
        return report

    def run_module(self, module,
                   analyses: Optional[AnalysisManager] = None) \
            -> list[PassReport]:
        """Run the pipeline on every function, serially."""
        return [self.run_function(function, module, analyses)
                for function in module.functions.values()]

    # ------------------------------------------------------------------

    @staticmethod
    def _check(module, function, pass_name: str,
               analyses: Optional[AnalysisManager]) -> None:
        from repro.tsa.verifier import collect_diagnostics
        errors = [d for d in collect_diagnostics(module, function,
                                                 analyses=analyses)
                  if d.severity == Severity.ERROR]
        if errors:
            raise PassCheckError(pass_name, function.name, errors)
