"""Class-file writer: the Figure 5 "file size" baseline.

Produces structurally faithful ``.class`` bytes for a compiled class --
constant pool (Utf8 / Class / NameAndType / Fieldref / Methodref /
String / Integer / Float / Long / Double), field_info and method_info
records, and Code attributes with real instruction encodings and
exception tables.  Debug attributes are omitted, matching the paper's
``javac -g:none`` baseline.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.jvm.codegen import CompiledClass, CompiledMethod
from repro.jvm.opcodes import Insn, OPCODE_BYTES, insn_size
from repro.typesys.types import ArrayType, ClassType, PrimitiveType, Type
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo


class ConstantPool:
    """Deduplicating JVM constant pool."""

    def __init__(self) -> None:
        self.entries: list[tuple] = []
        self._index: dict[tuple, int] = {}

    def _add(self, entry: tuple) -> int:
        cached = self._index.get(entry)
        if cached is not None:
            return cached
        self.entries.append(entry)
        index = len(self.entries)  # constant pool is 1-based
        self._index[entry] = index
        if entry[0] in ("long", "double"):
            self.entries.append(("padding",))
        return index

    def utf8(self, text: str) -> int:
        return self._add(("utf8", text))

    def class_ref(self, name: str) -> int:
        return self._add(("class", self.utf8(name.replace(".", "/"))))

    def class_of_type(self, type: Type) -> int:
        if isinstance(type, ArrayType):
            return self._add(("class", self.utf8(type.descriptor())))
        return self.class_ref(type.name)

    def name_and_type(self, name: str, descriptor: str) -> int:
        return self._add(("nameandtype", self.utf8(name),
                          self.utf8(descriptor)))

    def field_ref(self, field: FieldInfo) -> int:
        return self._add(("fieldref",
                          self.class_ref(field.declaring.name),
                          self.name_and_type(field.name,
                                             field.type.descriptor())))

    def method_ref(self, method: MethodInfo) -> int:
        return self._add(("methodref",
                          self.class_ref(method.declaring.name),
                          self.name_and_type(method.name,
                                             method.descriptor())))

    def string(self, value: str) -> int:
        return self._add(("string", self.utf8(value)))

    def integer(self, value: int) -> int:
        return self._add(("integer", value))

    def long(self, value: int) -> int:
        return self._add(("long", value))

    def float(self, value: float) -> int:
        return self._add(("float", struct.pack(">f", value)))

    def double(self, value: float) -> int:
        return self._add(("double", struct.pack(">d", value)))

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += struct.pack(">H", len(self.entries) + 1)
        for entry in self.entries:
            kind = entry[0]
            if kind == "utf8":
                data = entry[1].encode("utf-8")
                out += struct.pack(">BH", 1, len(data)) + data
            elif kind == "class":
                out += struct.pack(">BH", 7, entry[1])
            elif kind == "string":
                out += struct.pack(">BH", 8, entry[1])
            elif kind == "fieldref":
                out += struct.pack(">BHH", 9, entry[1], entry[2])
            elif kind == "methodref":
                out += struct.pack(">BHH", 10, entry[1], entry[2])
            elif kind == "nameandtype":
                out += struct.pack(">BHH", 12, entry[1], entry[2])
            elif kind == "integer":
                out += struct.pack(">Bi", 3, entry[1])
            elif kind == "float":
                out += struct.pack(">B", 4) + entry[1]
            elif kind == "long":
                out += struct.pack(">Bq", 5, entry[1])
            elif kind == "double":
                out += struct.pack(">B", 6) + entry[1]
            elif kind == "padding":
                pass
            else:  # pragma: no cover
                raise ValueError(f"bad cp entry {kind}")
        return bytes(out)


def _encode_insn(insn: Insn, pool: ConstantPool,
                 offsets: dict[int, int]) -> bytes:
    """Real byte encoding of one instruction."""
    op = insn.op
    if op == "iconst":
        value = insn.args[0]
        if -1 <= value <= 5:
            return bytes([0x03 + value])  # iconst_m1 is 0x02
        if -128 <= value <= 127:
            return struct.pack(">Bb", 0x10, value)
        if -32768 <= value <= 32767:
            return struct.pack(">Bh", 0x11, value)
        index = pool.integer(value)
        if index <= 255:
            return struct.pack(">BB", 0x12, index)
        return struct.pack(">BH", 0x13, index)  # ldc_w
    if op == "lconst":
        value = insn.args[0]
        if value in (0, 1):
            return bytes([0x09 + value])
        return struct.pack(">BH", 0x14, pool.long(value))
    if op == "fconst":
        value = insn.args[0]
        if value in (0.0, 1.0, 2.0):
            return bytes([0x0B + int(value)])
        index = pool.float(value)
        if index <= 255:
            return struct.pack(">BB", 0x12, index)
        return struct.pack(">BH", 0x13, index)
    if op == "dconst":
        value = insn.args[0]
        if value in (0.0, 1.0):
            return bytes([0x0E + int(value)])
        return struct.pack(">BH", 0x14, pool.double(value))
    if op == "ldc_string":
        index = pool.string(insn.args[0])
        if index <= 255:
            return struct.pack(">BB", 0x12, index)
        return struct.pack(">BH", 0x13, index)
    if op in ("iload", "lload", "fload", "dload", "aload",
              "istore", "lstore", "fstore", "dstore", "astore"):
        slot = insn.args[0]
        base = {"iload": 0x1A, "lload": 0x1E, "fload": 0x22,
                "dload": 0x26, "aload": 0x2A, "istore": 0x3B,
                "lstore": 0x3F, "fstore": 0x43, "dstore": 0x47,
                "astore": 0x4B}[op]
        if slot <= 3:
            return bytes([base + slot])
        generic = OPCODE_BYTES[op]
        if slot <= 255:
            return bytes([generic, slot])
        return struct.pack(">BBH", 0xC4, generic, slot)  # wide
    if op == "newarray":
        return bytes([0xBC, insn.args[0]])
    if op == "multianewarray":
        array_type, dims = insn.args
        return struct.pack(">BHB", 0xC5,
                           pool.class_of_type(array_type), dims)
    if op in ("getfield", "putfield", "getstatic", "putstatic"):
        return struct.pack(">BH", OPCODE_BYTES[op],
                           pool.field_ref(insn.args[0]))
    if op in ("invokevirtual", "invokespecial", "invokestatic"):
        return struct.pack(">BH", OPCODE_BYTES[op],
                           pool.method_ref(insn.args[0]))
    if op == "new":
        return struct.pack(">BH", 0xBB, pool.class_ref(insn.args[0].name))
    if op in ("checkcast", "instanceof", "anewarray"):
        return struct.pack(">BH", OPCODE_BYTES[op],
                           pool.class_of_type(insn.args[0]))
    from repro.jvm.opcodes import BRANCHES
    if op in BRANCHES:
        target = offsets[insn.args[0]]
        delta = target - insn.offset
        return struct.pack(">Bh", OPCODE_BYTES[op], delta)
    return bytes([OPCODE_BYTES[op]])


def _method_bytes(compiled: CompiledMethod, pool: ConstantPool) -> bytes:
    method = compiled.method
    access = 0x0001 | (0x0008 if method.is_static else 0)
    name_index = pool.utf8(method.name)
    desc_index = pool.utf8(method.descriptor())
    # index -> byte offset, for branch targets and exception ranges
    offsets = {i: insn.offset for i, insn in enumerate(compiled.insns)}
    end_offset = (compiled.insns[-1].offset
                  + insn_size(compiled.insns[-1])) if compiled.insns else 0
    offsets[len(compiled.insns)] = end_offset
    code = bytearray()
    for insn in compiled.insns:
        code += _encode_insn(insn, pool, offsets)
    table = bytearray()
    for start, end, handler, catch in compiled.exception_table:
        catch_index = pool.class_ref(catch.name) if catch else 0
        table += struct.pack(">HHHH", offsets[start], offsets[end],
                             offsets[handler], catch_index)
    attribute = struct.pack(">HHI", compiled.max_stack,
                            compiled.max_locals, len(code))
    attribute += bytes(code)
    attribute += struct.pack(">H", len(compiled.exception_table))
    attribute += bytes(table)
    attribute += struct.pack(">H", 0)  # no nested attributes
    out = struct.pack(">HHHH", access, name_index, desc_index, 1)
    out += struct.pack(">HI", pool.utf8("Code"), len(attribute))
    out += attribute
    return out


def class_file_bytes(compiled: CompiledClass) -> bytes:
    """Emit real ``.class`` bytes (javac -g:none equivalent)."""
    info = compiled.info
    pool = ConstantPool()
    this_index = pool.class_ref(info.name)
    super_index = pool.class_ref(info.superclass.name)
    field_bytes = bytearray()
    for field in info.fields:
        access = 0x0001 | (0x0008 if field.is_static else 0) \
            | (0x0010 if field.is_final else 0)
        field_bytes += struct.pack(
            ">HHHH", access, pool.utf8(field.name),
            pool.utf8(field.type.descriptor()), 0)
    method_bytes = bytearray()
    for method in compiled.methods:
        method_bytes += _method_bytes(method, pool)
    body = struct.pack(">HHH", 0x0021, this_index, super_index)
    body += struct.pack(">H", 0)  # interfaces
    body += struct.pack(">H", len(info.fields)) + bytes(field_bytes)
    body += struct.pack(">H", len(compiled.methods)) + bytes(method_bytes)
    body += struct.pack(">H", 0)  # class attributes
    header = struct.pack(">IHH", 0xCAFEBABE, 0, 46)  # Java 1.2 version
    return header + pool.to_bytes() + body


def class_file_size(compiled: CompiledClass) -> int:
    return len(class_file_bytes(compiled))
