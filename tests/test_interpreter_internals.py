"""Interpreter-level tests: frames, dispatch, dynamic check counting,
step limits, and direct function invocation."""

import pytest

from repro.interp.heap import JStr
from repro.interp.interpreter import Interpreter, StepLimitExceeded
from repro.pipeline import compile_to_module
from tests.conftest import main_wrap


class TestDirectInvocation:
    def test_run_function_with_arguments(self):
        module = compile_to_module(
            "class T { static int add(int a, int b) { return a + b; } }")
        fn = module.function_named("T", "add")
        result = Interpreter(module).run_function(fn, [20, 22])
        assert result.value == 42

    def test_run_function_with_reference_argument(self):
        module = compile_to_module(
            "class T { static int len(String s) { return s.length(); } }")
        fn = module.function_named("T", "len")
        result = Interpreter(module).run_function(fn, [JStr("abcd")])
        assert result.value == 4

    def test_exception_propagates_to_result(self):
        module = compile_to_module(
            "class T { static int bad(String s) { return s.length(); } }")
        fn = module.function_named("T", "bad")
        result = Interpreter(module).run_function(fn, [None])
        assert result.exception_name() == "java.lang.NullPointerException"
        assert result.value is None

    def test_instance_method_with_this(self):
        module = compile_to_module(
            "class T { int v; T(int v) { this.v = v; }"
            "int doubled() { return v * 2; } }")
        interp = Interpreter(module)
        ctor = next(f for m, f in module.functions.items()
                    if m.is_constructor)
        from repro.interp.heap import ObjectRef
        obj = ObjectRef(module.world.require("T"))
        interp.run_function(ctor, [obj, 21])
        doubled = module.function_named("T", "doubled")
        result = Interpreter(module).run_function(doubled, [obj])
        assert result.value == 42


class TestLimitsAndCounters:
    def test_step_limit_enforced(self):
        module = compile_to_module(main_wrap("while (true) { }"))
        interp = Interpreter(module, max_steps=1000)
        with pytest.raises(StepLimitExceeded):
            interp.run_main()

    def test_check_counters_track_dynamic_checks(self):
        module = compile_to_module(main_wrap(
            "int[] a = new int[10];"
            "for (int i = 0; i < 10; i++) a[i] = i;"))
        interp = Interpreter(module)
        interp.run_main()
        assert interp.check_counts["idxcheck"] == 10
        assert interp.check_counts["nullcheck"] >= 10

    def test_clinit_runs_once_in_declaration_order(self):
        source = """
        class A { static int x = Trace.mark(1); }
        class B { static int y = Trace.mark(2) + A.x; }
        class Trace {
            static int log;
            static int mark(int v) { log = log * 10 + v; return v; }
        }
        class Main { static void main() {
            System.out.println(Trace.log + " " + B.y);
        } }
        """
        module = compile_to_module(source)
        result = Interpreter(module).run_main("Main")
        assert result.stdout == "12 3\n"

    def test_main_selection_by_class(self):
        source = ("class A { static void main() "
                  "{ System.out.println(\"A\"); } }"
                  "class B { static void main() "
                  "{ System.out.println(\"B\"); } }")
        module = compile_to_module(source)
        assert Interpreter(module).run_main("B").stdout == "B\n"
        assert Interpreter(module).run_main("A").stdout == "A\n"

    def test_missing_main_reported(self):
        module = compile_to_module("class T { }")
        from repro.interp.interpreter import InterpreterError
        with pytest.raises(InterpreterError, match="no static main"):
            Interpreter(module).run_main()


class TestDeepRecursion:
    def test_recursion_to_moderate_depth(self):
        module = compile_to_module(
            "class T { static int depth(int n) {"
            "if (n == 0) return 0; return 1 + depth(n - 1); } }")
        fn = module.function_named("T", "depth")
        import sys
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(10000)
        try:
            result = Interpreter(module).run_function(fn, [300])
        finally:
            sys.setrecursionlimit(old)
        assert result.value == 300
