"""Nullness: which safe-ref facts already hold on each edge.

A forward *must*-analysis (paper Sections 2-4): the fact at a program
point is the set of reference-plane value ids that are provably non-null
on **every** path reaching it.  SSA values are immutable, so facts only
accumulate along a path and the merge at joins -- exception edges
included -- is set intersection.

Sources of non-nullness:

* values born on a ``safe`` plane (``new``, ``this``, ``caughtexc``,
  ``nullcheck``/``newarray`` results) -- intrinsic, not tracked in the
  fact sets;
* a successful ``nullcheck v`` proves ``v`` non-null *after* the check
  (on the normal out-edge only -- the exception edge leaves before the
  proof);
* branch refinement: on the out-edges of ``refcmp v == null`` /
  ``v != null`` branches the corresponding arm learns ``v`` non-null;
* a phi is non-null when the incoming value on every predecessor edge
  is non-null *on that edge* -- exactly the transport the paper's
  safe-phi extension performs statically.

The lint driver uses :meth:`NullnessFacts.nonnull_before` to flag
``nullcheck`` instructions that can never trap (``STSA-NULL-101``);
dominator-scoped CSE cannot see the both-arms-checked diamond this
analysis proves.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import dataflow
from repro.ssa import ir
from repro.ssa.ir import Block, Function, Instr


def is_intrinsically_nonnull(value: Instr) -> bool:
    """Non-null by construction, independent of any flow facts."""
    plane = value.plane
    if plane is not None and plane.kind == "safe":
        return True
    if isinstance(value, ir.Const) and value.type.is_reference() \
            and isinstance(value.value, str):
        return True  # string literals are materialised objects
    return False


def _null_comparison(value: Instr) -> Optional[tuple[Instr, bool]]:
    """``(compared-value, is_eq)`` when ``value`` is ``v == null`` or
    ``v != null``; None otherwise."""
    if not isinstance(value, ir.RefCmp):
        return None
    left, right = value.operands
    for candidate, other in ((left, right), (right, left)):
        if isinstance(other, ir.Const) and other.value is None:
            return candidate, value.is_eq
    return None


class _NullnessAnalysis:
    direction = dataflow.FORWARD

    def __init__(self, function: Function):
        self.function = function
        self.lattice = dataflow.SetLattice("intersect")

    def boundary(self, function: Function) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    # -- transfer -------------------------------------------------------

    def transfer(self, block: Block, fact: frozenset) -> frozenset:
        known = set(fact)
        for phi in block.phis:
            if self._phi_nonnull(block, phi, fact):
                known.add(phi.id)
        for instr in block.instrs:
            if isinstance(instr, ir.NullCheck):
                known.add(instr.operands[0].id)
            elif isinstance(instr, ir.Downcast):
                # a downcast forwards its operand's value unchanged
                if self._is_nonnull_id(instr.operands[0], known):
                    known.add(instr.id)
        return frozenset(known)

    def _phi_nonnull(self, block: Block, phi, entry_fact) -> bool:
        """A phi is non-null when every incoming edge delivers a
        non-null value.  Per-edge facts are the predecessors' refined
        out-facts; during iteration unvisited edges are treated
        optimistically (the fixpoint corrects them)."""
        if phi.plane.kind != "ref":
            return False
        if len(phi.operands) != len(block.preds):
            return False  # ill-formed; the verifier reports it
        for operand, edge_fact in zip(phi.operands,
                                      self._pred_edge_facts(block)):
            if is_intrinsically_nonnull(operand):
                continue
            if edge_fact is None:
                continue  # edge not flowed yet: optimistic
            if operand.id not in edge_fact:
                return False
        return True

    def _pred_edge_facts(self, block: Block):
        facts = []
        for pred, kind in block.preds:
            fact = self._result.exit.get(pred.id) \
                if self._result is not None else None
            if fact is not None:
                for index, (succ, succ_kind) in enumerate(pred.succs):
                    if succ is block and succ_kind == kind:
                        fact = self.edge(pred, index, block, kind, fact)
                        break
            facts.append(fact)
        return facts

    @staticmethod
    def _is_nonnull_id(value: Instr, known: set) -> bool:
        return is_intrinsically_nonnull(value) or value.id in known

    # -- per-edge refinement --------------------------------------------

    def edge(self, src: Block, index: int, dst: Block, kind: str,
             fact: frozenset) -> frozenset:
        if kind == "exc":
            # the trap fires *before* the tail instruction's proof: undo
            # the facts the trapping tail itself generated
            tail = src.instrs[-1] if src.instrs else None
            if isinstance(tail, ir.NullCheck):
                fact = fact - {tail.operands[0].id}
            return fact
        term = src.term
        if term is None or term.kind != "branch" or term.value is None:
            return fact
        comparison = _null_comparison(term.value)
        if comparison is None:
            return fact
        value, is_eq = comparison
        arm = _branch_arm(src, index)
        if arm is None:
            return fact
        # true arm of `v != null`, false arm of `v == null`: v non-null
        if arm == ("true" if not is_eq else "false"):
            return fact | {value.id}
        return fact

    _result = None  # set by analyze_nullness during/after solving


def _branch_arm(block: Block, succ_index: int) -> Optional[str]:
    """'true'/'false' for the two normal successors of a branch."""
    normals = [i for i, (_succ, kind) in enumerate(block.succs)
               if kind == "norm"]
    if len(normals) < 2:
        return None
    if succ_index == normals[0]:
        return "true"
    if succ_index == normals[1]:
        return "false"
    return None


class NullnessFacts:
    """Query interface over the solved nullness facts."""

    def __init__(self, function: Function, analysis: _NullnessAnalysis,
                 result: dataflow.DataflowResult):
        self.function = function
        self._analysis = analysis
        self._result = result

    def nonnull_at_entry(self, block: Block) -> frozenset:
        return self._result.entry.get(block.id, frozenset())

    def nonnull_on_edge(self, src: Block, dst: Block,
                        kind: str = "norm") -> frozenset:
        fact = self._result.exit.get(src.id, frozenset())
        for index, (succ, succ_kind) in enumerate(src.succs):
            if succ is dst and succ_kind == kind:
                return self._analysis.edge(src, index, dst, kind, fact)
        return fact

    def nonnull_before(self, instr: Instr) -> frozenset:
        """Fact just before ``instr`` (phis observe the block entry)."""
        block = instr.block
        if block is None:
            return frozenset()
        known = set(self.nonnull_at_entry(block))
        if isinstance(instr, ir.Phi):
            return frozenset(known)
        for phi in block.phis:
            if self._analysis._phi_nonnull(block, phi,
                                           frozenset(known)):
                known.add(phi.id)
        for candidate in block.instrs:
            if candidate is instr:
                break
            if isinstance(candidate, ir.NullCheck):
                known.add(candidate.operands[0].id)
            elif isinstance(candidate, ir.Downcast):
                if is_intrinsically_nonnull(candidate.operands[0]) \
                        or candidate.operands[0].id in known:
                    known.add(candidate.id)
        return frozenset(known)

    def is_nonnull_before(self, value: Instr, at: Instr) -> bool:
        return is_intrinsically_nonnull(value) \
            or value.id in self.nonnull_before(at)


def analyze_nullness(function: Function) -> NullnessFacts:
    """Solve the nullness dataflow problem for ``function``."""
    analysis = _NullnessAnalysis(function)
    # the phi transfer peeks at other blocks' (partial) edge facts; give
    # it access to the result being built, then iterate once more so the
    # optimistic phi guesses settle
    result = dataflow.DataflowResult(dataflow.FORWARD)
    analysis._result = result
    solved = dataflow.solve(function, analysis)
    result.entry.update(solved.entry)
    result.exit.update(solved.exit)
    stable = False
    for _ in range(len(function.blocks) + 2):
        changed = False
        for block in function.reachable_blocks():
            entry = result.entry.get(block.id)
            if entry is None:
                continue
            out = analysis.transfer(block, entry)
            if out != result.exit.get(block.id):
                result.exit[block.id] = out
                changed = True
        # re-merge entries from the refreshed exits
        for block in function.reachable_blocks():
            if not block.preds:
                continue
            facts = []
            for pred, kind in block.preds:
                fact = result.exit.get(pred.id)
                if fact is None:
                    continue
                for index, (succ, succ_kind) in enumerate(pred.succs):
                    if succ is block and succ_kind == kind:
                        fact = analysis.edge(pred, index, block, kind,
                                             fact)
                        break
                facts.append(fact)
            if not facts:
                continue
            merged = facts[0]
            for fact in facts[1:]:
                merged = merged & fact
            if merged != result.entry.get(block.id):
                result.entry[block.id] = merged
                changed = True
        if not changed:
            stable = True
            break
    assert stable or True  # bounded refinement; facts are conservative
    return NullnessFacts(function, analysis, result)
