"""Control Structure Tree (CST) and canonical CFG derivation.

SafeTSA transmits program structure as a CST rather than explicit edges
(paper Section 7).  The consumer re-derives the control-flow graph -- the
edge set, the canonical predecessor order that phi operands align with,
and the exception edges of try regions -- by the *same* deterministic walk
the producer used.  :func:`derive_cfg` is that walk; both the encoder and
the decoder call it, so producer and consumer can never disagree.

Region grammar::

    Region := RBasic(block [, exc])         leaf; block.term routes control
            | RSeq(regions...)
            | RIf(cond_block, then, else?)  cond_block ends with a branch
            | RWhile(header_block, body)    header ends with a branch
            | RDoWhile(body, cond_block)    condition at the bottom
            | RLoop(body)                   infinite loop; exits via break
            | RLabeled(body)                break target
            | RTry(body, dispatch_block, handler)

Leaf terminators (``Term.kind``): ``fall``, ``return``, ``throw``,
``break`` (depth = enclosing break targets to skip), ``continue``
(depth = enclosing loops to skip).  Terminator kinds are structural --
they are part of the CST encoding -- while their value operands are
filled in when block bodies are decoded.
"""

from __future__ import annotations

from typing import Optional

from repro.ssa.ir import Block


class Region:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}>"


class RBasic(Region):
    __slots__ = ("block", "exc")

    def __init__(self, block: Block, exc: bool = False):
        self.block = block
        #: True when this block has an exception edge to the enclosing
        #: try's dispatch block (its last instruction traps)
        self.exc = exc


class RSeq(Region):
    __slots__ = ("regions",)

    def __init__(self, regions: list[Region]):
        self.regions = regions


class RIf(Region):
    __slots__ = ("cond_block", "then_region", "else_region")

    def __init__(self, cond_block: Block, then_region: Region,
                 else_region: Optional[Region]):
        self.cond_block = cond_block
        self.then_region = then_region
        self.else_region = else_region


class RWhile(Region):
    __slots__ = ("header", "body")

    def __init__(self, header: Block, body: Region):
        self.header = header
        self.body = body


class RDoWhile(Region):
    __slots__ = ("body", "cond_block")

    def __init__(self, body: Region, cond_block: Block):
        self.body = body
        self.cond_block = cond_block


class RLoop(Region):
    __slots__ = ("body",)

    def __init__(self, body: Region):
        self.body = body


class RLabeled(Region):
    __slots__ = ("body",)

    def __init__(self, body: Region):
        self.body = body


class RTry(Region):
    __slots__ = ("body", "dispatch_block", "handler")

    def __init__(self, body: Region, dispatch_block: Block, handler: Region):
        self.body = body
        self.dispatch_block = dispatch_block
        self.handler = handler


class CstError(Exception):
    """Raised when a CST is structurally malformed."""


Edge = tuple[Block, str]  # (source block, 'norm' | 'exc')


class _Deriver:
    """Performs the canonical CFG-derivation walk."""

    def __init__(self) -> None:
        #: per break target: list collecting dangling exit edges
        self.break_stack: list[list[Edge]] = []
        #: per loop: the block a continue jumps to
        self.continue_stack: list[Block] = []
        #: current exception dispatch block (None outside try bodies)
        self.exc_stack: list[Optional[Block]] = [None]

    # ------------------------------------------------------------------

    def connect(self, edges: list[Edge], target: Block) -> None:
        for source, kind in edges:
            target.add_pred(source, kind)

    def region(self, region: Region, incoming: list[Edge]) -> list[Edge]:
        """Wire ``incoming`` into ``region``; return its dangling exits."""
        if isinstance(region, RBasic):
            return self._basic(region, incoming)
        if isinstance(region, RSeq):
            edges = incoming
            for child in region.regions:
                edges = self.region(child, edges)
            return edges
        if isinstance(region, RIf):
            return self._if(region, incoming)
        if isinstance(region, RWhile):
            return self._while(region, incoming)
        if isinstance(region, RDoWhile):
            return self._do_while(region, incoming)
        if isinstance(region, RLoop):
            return self._loop(region, incoming)
        if isinstance(region, RLabeled):
            self.break_stack.append([])
            out = self.region(region.body, incoming)
            breaks = self.break_stack.pop()
            return out + breaks
        if isinstance(region, RTry):
            return self._try(region, incoming)
        raise CstError(f"unknown region {type(region).__name__}")

    # ------------------------------------------------------------------

    def _basic(self, region: RBasic, incoming: list[Edge]) -> list[Edge]:
        block = region.block
        self.connect(incoming, block)
        if region.exc:
            dispatch = self.exc_stack[-1]
            if dispatch is None:
                raise CstError("exception edge outside of a try body")
            dispatch.add_pred(block, "exc")
        term = block.term
        if term is None:
            raise CstError(f"block B{block.id} has no terminator")
        if term.kind == "fall":
            return [(block, "norm")]
        if term.kind in ("return", "throw", "unreachable"):
            return []
        if term.kind == "break":
            if term.depth >= len(self.break_stack):
                raise CstError("break depth exceeds nesting")
            self.break_stack[-1 - term.depth].append((block, "norm"))
            return []
        if term.kind == "continue":
            if term.depth >= len(self.continue_stack):
                raise CstError("continue depth exceeds nesting")
            target = self.continue_stack[-1 - term.depth]
            target.add_pred(block, "norm")
            return []
        raise CstError(f"bad leaf terminator {term.kind!r}")

    def _if(self, region: RIf, incoming: list[Edge]) -> list[Edge]:
        cond = region.cond_block
        self.connect(incoming, cond)
        self._require_branch(cond)
        then_out = self.region(region.then_region, [(cond, "norm")])
        if region.else_region is not None:
            else_out = self.region(region.else_region, [(cond, "norm")])
        else:
            else_out = [(cond, "norm")]
        return then_out + else_out

    def _while(self, region: RWhile, incoming: list[Edge]) -> list[Edge]:
        header = region.header
        self.connect(incoming, header)
        self._require_branch(header)
        self.break_stack.append([])
        self.continue_stack.append(header)
        body_out = self.region(region.body, [(header, "norm")])
        self.continue_stack.pop()
        breaks = self.break_stack.pop()
        self.connect(body_out, header)  # back edges
        return [(header, "norm")] + breaks

    def _do_while(self, region: RDoWhile, incoming: list[Edge]) -> list[Edge]:
        cond = region.cond_block
        self.break_stack.append([])
        self.continue_stack.append(cond)
        # the body entry's preds: incoming edges first, back edge last
        body_out = self.region(region.body, incoming)
        self.continue_stack.pop()
        breaks = self.break_stack.pop()
        self.connect(body_out, cond)
        self._require_branch(cond)
        entry = _entry_block(region.body)
        entry.add_pred(cond, "norm")  # the back edge (true branch)
        return [(cond, "norm")] + breaks

    def _loop(self, region: RLoop, incoming: list[Edge]) -> list[Edge]:
        entry = _entry_block(region.body)
        self.break_stack.append([])
        self.continue_stack.append(entry)
        body_out = self.region(region.body, incoming)
        self.continue_stack.pop()
        breaks = self.break_stack.pop()
        self.connect(body_out, entry)  # back edges
        return breaks

    def _try(self, region: RTry, incoming: list[Edge]) -> list[Edge]:
        self.exc_stack.append(region.dispatch_block)
        body_out = self.region(region.body, incoming)
        self.exc_stack.pop()
        handler_entry = _entry_block(region.handler)
        if handler_entry is not region.dispatch_block:
            raise CstError("handler region must start at the dispatch block")
        handler_out = self.region(region.handler, [])
        return body_out + handler_out

    @staticmethod
    def _require_branch(block: Block) -> None:
        if block.term is None or block.term.kind != "branch":
            raise CstError(f"block B{block.id} must end with a branch")


def _entry_block(region: Region) -> Block:
    """The leftmost block of a region (its entry)."""
    while True:
        if isinstance(region, RBasic):
            return region.block
        if isinstance(region, RSeq):
            if not region.regions:
                raise CstError("empty sequence has no entry block")
            region = region.regions[0]
        elif isinstance(region, RIf):
            return region.cond_block
        elif isinstance(region, RWhile):
            return region.header
        elif isinstance(region, (RDoWhile, RLoop, RLabeled)):
            region = region.body
        elif isinstance(region, RTry):
            region = region.body
        else:
            raise CstError(f"unknown region {type(region).__name__}")


def derive_cfg(function) -> None:
    """(Re)compute the CFG of ``function`` from its CST.

    Clears any existing edges, then performs the canonical walk.  Blocks
    whose dangling exits reach the end of the method must terminate with
    ``return`` (void methods get their implicit return during
    construction), so leftover edges are an error.
    """
    for block in function.blocks:
        block.preds = []
        block.succs = []
    deriver = _Deriver()
    leftovers = deriver.region(function.cst, [])
    if leftovers:
        blocks = ", ".join(f"B{b.id}" for b, _ in leftovers)
        raise CstError(
            f"control falls off the end of {function.name} from {blocks}")


def map_exception_contexts(root: Region) -> dict[int, Optional[Block]]:
    """block id -> enclosing try's dispatch block (None outside any try).

    Shared by the verifier and the decoder to agree on which blocks may
    contain exception points.
    """
    contexts: dict[int, Optional[Block]] = {}

    def walk(region: Region, dispatch: Optional[Block]) -> None:
        if isinstance(region, RBasic):
            contexts[region.block.id] = dispatch
        elif isinstance(region, RSeq):
            for child in region.regions:
                walk(child, dispatch)
        elif isinstance(region, RIf):
            contexts[region.cond_block.id] = dispatch
            walk(region.then_region, dispatch)
            if region.else_region is not None:
                walk(region.else_region, dispatch)
        elif isinstance(region, RWhile):
            contexts[region.header.id] = dispatch
            walk(region.body, dispatch)
        elif isinstance(region, RDoWhile):
            contexts[region.cond_block.id] = dispatch
            walk(region.body, dispatch)
        elif isinstance(region, (RLoop, RLabeled)):
            walk(region.body, dispatch)
        elif isinstance(region, RTry):
            walk(region.body, region.dispatch_block)
            walk(region.handler, dispatch)

    walk(root, None)
    return contexts


def iter_regions(region: Region):
    """Pre-order iteration over all regions of a CST."""
    stack = [region]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, RSeq):
            stack.extend(reversed(current.regions))
        elif isinstance(current, RIf):
            if current.else_region is not None:
                stack.append(current.else_region)
            stack.append(current.then_region)
        elif isinstance(current, (RWhile, RDoWhile, RLoop, RLabeled)):
            stack.append(current.body)
        elif isinstance(current, RTry):
            stack.append(current.handler)
            stack.append(current.body)


def cst_blocks(region: Region) -> list[Block]:
    """All blocks owned by a CST, in walk order."""
    blocks: list[Block] = []
    for node in iter_regions(region):
        if isinstance(node, RBasic):
            blocks.append(node.block)
        elif isinstance(node, RIf):
            blocks.append(node.cond_block)
        elif isinstance(node, RWhile):
            blocks.append(node.header)
        elif isinstance(node, RDoWhile):
            blocks.append(node.cond_block)
    return blocks
