"""Liveness: a backward may-analysis over the SafeTSA CFG.

The fact at a point is the set of value ids that may still be read on
some path to a function exit.  Facts flow backward: a block's live-out
is the union over its out-edges of the successors' live-in, where each
edge contributes the successor's phi *operands* for that specific
predecessor position (the per-edge copy semantics of phis).

Two views are provided:

* :func:`analyze_liveness` -- the CFG dataflow (live-in/live-out per
  block), built on :mod:`repro.analysis.dataflow`;
* :func:`observable_values` -- the SSA-graph observability closure the
  DCE pass uses (roots: side effects, traps, terminator operands).  A
  phi outside this set is *dead* even when a cycle of dead phis keeps
  referencing it -- this is what the ``STSA-PHI-101`` lint rule needs,
  since plain CFG liveness would call mutually-referencing dead phis
  "live".
"""

from __future__ import annotations

from repro.analysis import dataflow
from repro.opt.dce import _is_root
from repro.ssa.ir import Block, Function, Instr


class _LivenessAnalysis:
    direction = dataflow.BACKWARD

    def __init__(self, function: Function):
        self.function = function
        self.lattice = dataflow.SetLattice("union")

    def boundary(self, function: Function) -> frozenset:
        return frozenset()  # nothing is live past a return/throw

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, block: Block, fact: frozenset) -> frozenset:
        """``fact`` is the live-out; returns the live-in."""
        live = set(fact)
        if block.term is not None and block.term.value is not None:
            live.add(block.term.value.id)
        for instr in reversed(block.instrs):
            live.discard(instr.id)
            for operand in instr.operands:
                live.add(operand.id)
        # phi defs die at the block head; their operands live on the
        # incoming edges (see :meth:`edge`), not inside this block
        for phi in block.phis:
            live.discard(phi.id)
        return frozenset(live)

    def edge(self, src: Block, index: int, dst: Block, kind: str,
             fact: frozenset) -> frozenset:
        """Backward edge hook: ``fact`` is ``dst``'s live-in; add the
        phi operands ``dst`` reads along this particular edge."""
        extra = set()
        for position, (pred, pred_kind) in enumerate(dst.preds):
            if pred is src and pred_kind == kind:
                for phi in dst.phis:
                    if position < len(phi.operands):
                        extra.add(phi.operands[position].id)
        return fact | extra if extra else fact


class LivenessFacts:
    """Query interface over the solved liveness facts."""

    def __init__(self, function: Function,
                 result: dataflow.DataflowResult):
        self.function = function
        self._result = result

    def live_in(self, block: Block) -> frozenset:
        return self._result.out_fact(block) or frozenset()

    def live_out(self, block: Block) -> frozenset:
        return self._result.in_fact(block) or frozenset()

    def is_live_out(self, value: Instr, block: Block) -> bool:
        return value.id in self.live_out(block)


def analyze_liveness(function: Function) -> LivenessFacts:
    """Solve the backward liveness problem for ``function``."""
    analysis = _LivenessAnalysis(function)
    result = dataflow.solve(function, analysis)
    return LivenessFacts(function, result)


def observable_values(function: Function) -> set[int]:
    """Ids of values transitively reachable from an observable root
    (side effect, trap, or terminator operand) -- the DCE mark set."""
    live: set[int] = set()
    worklist: list[Instr] = []

    def mark(instr: Instr) -> None:
        if instr.id not in live:
            live.add(instr.id)
            worklist.append(instr)

    for block in function.reachable_blocks():
        for instr in block.all_instrs():
            if _is_root(instr):
                mark(instr)
        if block.term is not None and block.term.value is not None:
            mark(block.term.value)
    while worklist:
        instr = worklist.pop()
        for operand in instr.operands:
            mark(operand)
    return live
