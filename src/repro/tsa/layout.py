"""Register layout: dominator-relative ``(l, r)`` value references.

On every plane, registers fill in ascending order per basic block
("a contiguous numbering facilitates compact externalization", Section 3).
An operand reference ``(l, r)`` selects the block ``l`` levels up the
dominator tree (0 = the using block) and register ``r`` on the
instruction's implied plane there.  For phi operands, ``l = 0`` denotes
the corresponding predecessor block and higher values that block's
dominators (Section 2).
"""

from __future__ import annotations

from typing import Optional

from repro.ssa.dominators import DominatorTree, compute_dominators
from repro.ssa.ir import Block, Function, Instr, Phi, Plane


class LayoutError(Exception):
    """An operand reference is unrepresentable as ``(l, r)``."""


class FunctionLayout:
    """Precomputed numbering for one function."""

    def __init__(self, function: Function,
                 domtree: Optional[DominatorTree] = None):
        self.function = function
        self.domtree = domtree or compute_dominators(function)
        #: blocks in dominator-tree pre-order (the transmission order)
        self.order: list[Block] = list(self.domtree.preorder)
        #: instr id -> (block, plane, register index)
        self.position: dict[int, tuple[Block, Plane, int]] = {}
        #: block id -> plane -> list of instrs in register order
        self.planes: dict[int, dict[Plane, list[Instr]]] = {}
        #: instr id -> linear position within its block (phis first)
        self.linear: dict[int, int] = {}
        for block in self.order:
            self._number_block(block)

    def _number_block(self, block: Block) -> None:
        planes: dict[Plane, list[Instr]] = {}
        self.planes[block.id] = planes
        for position, instr in enumerate(block.all_instrs()):
            self.linear[instr.id] = position
            if instr.plane is None:
                continue
            regs = planes.setdefault(instr.plane, [])
            self.position[instr.id] = (block, instr.plane, len(regs))
            regs.append(instr)

    # ------------------------------------------------------------------

    def ref_of(self, use_block: Block, operand: Instr) -> tuple[int, int]:
        """The ``(l, r)`` pair referencing ``operand`` from ``use_block``."""
        if operand.id not in self.position:
            raise LayoutError(f"operand v{operand.id} was never numbered "
                              "(unreachable definition)")
        def_block, _plane, reg = self.position[operand.id]
        try:
            level = self.domtree.level_of(use_block, def_block)
        except ValueError as error:
            raise LayoutError(str(error)) from None
        return level, reg

    def phi_ref(self, pred_block: Block, operand: Instr) -> tuple[int, int]:
        """Phi operand reference: ``l = 0`` is the predecessor itself."""
        return self.ref_of(pred_block, operand)

    # ------------------------------------------------------------------
    # alphabet sizes (the "finite set determined by the preceding
    # context" the prefix coder relies on)

    def regs_at(self, block: Block, plane: Plane) -> int:
        """Registers defined on ``plane`` in ``block`` (complete block)."""
        return len(self.planes.get(block.id, {}).get(plane, ()))

    def flat_index(self, use_block: Block, operand: Instr,
                   defined_in_use_block: int) -> int:
        """Flatten ``(l, r)`` into a single bounded integer.

        The alphabet enumerates, innermost block first, every register on
        the operand's plane that is visible at the use point:
        ``defined_in_use_block`` registers of the using block itself, then
        all registers of each dominator in turn.
        """
        level, reg = self.ref_of(use_block, operand)
        plane = operand.plane
        offset = 0
        current: Optional[Block] = use_block
        for step in range(level):
            offset += (defined_in_use_block if step == 0
                       else self.regs_at(current, plane))
            current = self.domtree.idom.get(current)
            if current is None:
                raise LayoutError("reference escapes the dominator chain")
        return offset + reg

    def alphabet_size(self, use_block: Block, plane: Plane,
                      defined_in_use_block: int) -> int:
        """Total registers on ``plane`` visible at a point in ``use_block``."""
        total = defined_in_use_block
        current = self.domtree.idom.get(use_block)
        while current is not None:
            total += self.regs_at(current, plane)
            current = self.domtree.idom.get(current)
        return total

    def resolve_flat(self, use_block: Block, plane: Plane,
                     defined_in_use_block: int, index: int) -> Instr:
        """Inverse of :meth:`flat_index` (used by the decoder)."""
        current: Optional[Block] = use_block
        first = True
        while current is not None:
            count = (defined_in_use_block if first
                     else self.regs_at(current, plane))
            if index < count:
                return self.planes[current.id][plane][index]
            index -= count
            current = self.domtree.idom.get(current)
            first = False
        raise LayoutError(f"flat register index out of range on {plane}")


def layout_function(function: Function) -> FunctionLayout:
    return FunctionLayout(function)
