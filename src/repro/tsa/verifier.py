"""SafeTSA verification.

The paper's central claim is that most of this never needs to run: the
wire format cannot *represent* an out-of-range ``(l, r)`` reference or a
wrong-plane operand, so consumer verification reduces to per-block,
per-plane counters (Section 9).  This module implements the full property
set explicitly so that

* hand-constructed (attack) modules can be checked,
* optimisation passes can assert they preserve well-formedness, and
* the cost of SafeTSA verification can be measured against JVM bytecode
  dataflow verification (experiment E5).

Checked properties:

1. the CST derives a consistent CFG (structure);
2. every operand's definition dominates its use -- same-block uses must
   be defined earlier (referential integrity, Section 2); a value
   produced by a *trapping* subblock tail is additionally only usable
   beneath the tail's normal successor, because the exception edge
   leaves before the definition (``STSA-REF-004``);
3. every operand lives on exactly the register plane the instruction
   implies (type separation, Sections 3-4);
4. phi operand counts match predecessor counts and each operand is
   available at the end of its predecessor;
5. symbolic references (types, fields, methods, operations) resolve in
   the tamper-proof tables;
6. exception discipline: a trapping instruction inside a try body
   terminates its subblock and the subblock has the exception edge to
   the correct dispatch block (Section 7).

Every finding is a structured :class:`repro.analysis.Diagnostic` with a
stable code, severity, and (function, block, instruction) location.
:func:`verify_function` / :func:`verify_module` keep the historical
fail-fast contract (raise :class:`VerifyError` on the first
error-severity finding); :func:`collect_diagnostics` gathers *all*
findings instead, including warning-severity ones such as unreachable
blocks (``STSA-CFG-101``) that fail-fast verification deliberately
tolerates -- an optimiser legitimately strands dispatch blocks, and
unreachable blocks are never transmitted.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import Diagnostic
from repro.ssa.cst import CstError, derive_cfg, map_exception_contexts
from repro.ssa.dominators import compute_dominators
from repro.ssa import ir
from repro.ssa.ir import Block, Function, Instr, Module, Phi, Plane
from repro.typesys.ops import OPS_BY_TYPE
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    INT,
    PrimitiveType,
    Type,
    VOID,
)

THROWABLE = ClassType("java.lang.Throwable")


class VerifyError(Exception):
    """The module violates a SafeTSA well-formedness property.

    Carries the underlying :class:`Diagnostic`; ``code``, ``function``,
    ``block`` and ``instr`` are exposed directly for error handling and
    blame attribution.
    """

    def __init__(self, diagnostic):
        if not isinstance(diagnostic, Diagnostic):
            diagnostic = Diagnostic("STSA-GEN-001", str(diagnostic))
        self.diagnostic = diagnostic
        prefix = f"{diagnostic.function}: " if diagnostic.function else ""
        super().__init__(
            f"{prefix}{diagnostic.message} [{diagnostic.code}]")

    @property
    def code(self) -> str:
        return self.diagnostic.code

    @property
    def function(self) -> Optional[str]:
        return self.diagnostic.function

    @property
    def block(self) -> Optional[int]:
        return self.diagnostic.block

    @property
    def instr(self) -> Optional[int]:
        return self.diagnostic.instr


class _FunctionVerifier:
    def __init__(self, module: Module, function: Function,
                 collect: bool = False, analyses=None):
        #: optional :class:`repro.analysis.manager.AnalysisManager`;
        #: supplies (and caches) the dominator tree when present
        self.analyses = analyses
        self.module = module
        self.world = module.world
        self.table = module.type_table
        self.function = function
        #: collect-all mode: record diagnostics instead of failing fast
        self.collect = collect
        self.diagnostics: list[Diagnostic] = []
        #: default location context for :meth:`fail`
        self._ctx_block: Optional[Block] = None
        self._ctx_instr: Optional[Instr] = None

    def fail(self, message: str, code: str = "STSA-GEN-001", *,
             block: Optional[Block] = None,
             instr: Optional[Instr] = None) -> None:
        block = block if block is not None else self._ctx_block
        instr = instr if instr is not None else self._ctx_instr
        raise VerifyError(Diagnostic(
            code, message,
            function=self.function.name,
            block=block.id if block is not None else None,
            instr=instr.id if instr is not None else None))

    def _guard(self, check, *args) -> None:
        """Run one check unit; in collect mode a failure is recorded and
        verification continues with the next unit."""
        if not self.collect:
            check(*args)
            return
        try:
            check(*args)
        except VerifyError as error:
            self.diagnostics.append(error.diagnostic)

    # ------------------------------------------------------------------

    def verify(self) -> None:
        function = self.function
        try:
            derive_cfg(function)
        except CstError as error:
            self._ctx_block = None
            if self.collect:
                self.diagnostics.append(Diagnostic(
                    "STSA-CFG-001", f"bad control structure: {error}",
                    function=function.name))
                return  # nothing below is meaningful without a CFG
            self.fail(f"bad control structure: {error}", "STSA-CFG-001")
        # derive_cfg above rewired edges on the *same* Block objects, so
        # a cached dominator tree for an unchanged function stays valid
        if self.analyses is not None:
            self.domtree = self.analyses.get("domtree", function)
        else:
            self.domtree = compute_dominators(function)
        self.dispatch_of = map_exception_contexts(function.cst)
        self.linear: dict[int, tuple[Block, int]] = {}
        for block in function.blocks:
            for position, instr in enumerate(block.all_instrs()):
                self.linear[instr.id] = (block, position)
        for block in function.blocks:
            if block not in self.domtree.idom:
                # unreachable blocks carry no code and are never
                # transmitted; fail-fast verification tolerates them,
                # collect mode surfaces them as a lint warning
                if self.collect:
                    self.diagnostics.append(Diagnostic(
                        "STSA-CFG-101",
                        f"B{block.id} is unreachable from the entry",
                        function=function.name, block=block.id))
                continue
            self._verify_block(block)

    # ------------------------------------------------------------------

    def _verify_block(self, block: Block) -> None:
        self._ctx_block = block
        self._ctx_instr = None
        dispatch = self.dispatch_of.get(block.id)
        pred_kinds = {kind for _, kind in block.preds}
        self._guard(self._verify_pred_kinds, block, pred_kinds)
        for phi in block.phis:
            self._ctx_instr = phi
            self._guard(self._verify_phi, block, phi)
        for position, instr in enumerate(block.instrs):
            self._ctx_instr = instr
            self._guard(self._verify_operand_dominance, block, instr)
            self._guard(self._verify_instr, block, instr)
            self._guard(self._verify_exception_discipline, block, instr,
                        position, dispatch, pred_kinds)
        self._ctx_instr = None
        self._guard(self._verify_term, block, dispatch)
        self._guard(self._verify_exc_edge, block, dispatch)

    def _verify_pred_kinds(self, block: Block, pred_kinds: set) -> None:
        if "exc" in pred_kinds and "norm" in pred_kinds:
            self.fail(f"B{block.id} mixes normal and exception "
                      "predecessors", "STSA-CFG-003")

    def _verify_exception_discipline(self, block: Block, instr: Instr,
                                     position: int,
                                     dispatch: Optional[Block],
                                     pred_kinds: set) -> None:
        if instr.traps and dispatch is not None:
            if position != len(block.instrs) - 1:
                self.fail(
                    f"trapping v{instr.id} is not last in its subblock "
                    f"B{block.id}", "STSA-EXC-001")
            if block.exc_succ() is not dispatch:
                self.fail(
                    f"B{block.id} lacks the exception edge to its "
                    "dispatch block", "STSA-EXC-002")
            if block.term is None or block.term.kind != "fall":
                self.fail(
                    f"B{block.id} with a trapping tail must fall through",
                    "STSA-EXC-003")
        if isinstance(instr, ir.CaughtExc):
            if not block.preds or pred_kinds != {"exc"}:
                self.fail(
                    f"caughtexc in B{block.id} which is not a dispatch "
                    "block", "STSA-EXC-004")

    def _verify_exc_edge(self, block: Block,
                         dispatch: Optional[Block]) -> None:
        if block.exc_succ() is None:
            return
        term = block.term
        ends_with_trap = bool(block.instrs) and block.instrs[-1].traps
        if not (term is not None
                and ((term.kind == "fall" and ends_with_trap)
                     or term.kind == "throw")):
            self.fail(f"B{block.id} has an exception edge but no "
                      "exception point", "STSA-EXC-005")
        if block.exc_succ() is not dispatch:
            self.fail(f"B{block.id} exception edge escapes its try",
                      "STSA-EXC-006")

    def _verify_phi(self, block: Block, phi: Phi) -> None:
        if len(phi.operands) != len(block.preds):
            self.fail(f"phi v{phi.id} has {len(phi.operands)} operands for "
                      f"{len(block.preds)} predecessors", "STSA-PHI-001")
        for operand, (pred, kind) in zip(phi.operands, block.preds):
            if operand.plane != phi.plane:
                self.fail(f"phi v{phi.id} operand v{operand.id} is on plane "
                          f"{operand.plane}, not {phi.plane}",
                          "STSA-PHI-002")
            self._check_available_at_end(pred, kind, operand,
                                         f"phi v{phi.id} operand")

    def _check_available_at_end(self, pred: Block, kind: str,
                                operand: Instr, what: str) -> None:
        if pred not in self.domtree.idom:
            # an edge from an unreachable predecessor can never execute;
            # its operand slot is dead data (the block itself is the
            # STSA-CFG-101 finding, and cleanup excises it)
            return
        def_block, _pos = self.linear.get(operand.id, (None, -1))
        if def_block is None:
            self.fail(f"{what} v{operand.id} has no definition",
                      "STSA-REF-003")
        if def_block is pred:
            # along an exception edge the values available are those
            # defined *before* the trap fires -- which excludes the
            # trapping tail itself
            if kind == "exc" and operand.traps \
                    and pred.instrs and pred.instrs[-1] is operand:
                self.fail(f"{what} v{operand.id} is the trapping tail of "
                          f"its own exception edge B{pred.id}",
                          "STSA-REF-004")
            return
        if not self.domtree.dominates(def_block, pred):
            self.fail(f"{what} v{operand.id} (B{def_block.id}) does not "
                      f"dominate predecessor B{pred.id}", "STSA-PHI-003")
        self._check_trap_gate(operand, def_block, pred, what)

    def _check_trap_gate(self, operand: Instr, def_block: Block,
                         target: Block, what: str) -> None:
        """A trapping tail's result is undefined on its exception edge:
        every use must sit beneath the tail's *normal* successor, not
        merely beneath the defining block (see ir.trapping_tail_gate)."""
        gate = ir.trapping_tail_gate(def_block, operand)
        if gate is not None and not self.domtree.dominates(gate, target):
            self.fail(
                f"{what} uses trapping v{operand.id} (B{def_block.id}) on "
                f"a path through its exception edge", "STSA-REF-004")

    def _verify_operand_dominance(self, block: Block, instr: Instr) -> None:
        _, use_pos = self.linear[instr.id]
        for operand in instr.operands:
            entry = self.linear.get(operand.id)
            if entry is None:
                self.fail(f"v{instr.id} references undefined v{operand.id}",
                          "STSA-REF-003")
            def_block, def_pos = entry
            if def_block is block:
                if def_pos >= use_pos:
                    self.fail(f"v{instr.id} uses v{operand.id} before its "
                              f"definition in B{block.id}", "STSA-REF-001")
            elif not self.domtree.dominates(def_block, block):
                self.fail(
                    f"v{instr.id} in B{block.id} references v{operand.id} "
                    f"in non-dominating B{def_block.id}", "STSA-REF-002")
            else:
                self._check_trap_gate(operand, def_block, block,
                                      f"v{instr.id} in B{block.id}")

    def _verify_term(self, block: Block, dispatch: Optional[Block]) -> None:
        term = block.term
        if term is None:
            self.fail(f"B{block.id} has no terminator", "STSA-CFG-002")
        value = term.value
        if value is not None:
            entry = self.linear.get(value.id)
            if entry is None:
                self.fail(f"terminator of B{block.id} references undefined "
                          f"value", "STSA-REF-003")
            def_block, _pos = entry
            if def_block is not block:
                if not self.domtree.dominates(def_block, block):
                    self.fail(f"terminator of B{block.id} references "
                              "non-dominating value", "STSA-REF-002")
                self._check_trap_gate(value, def_block, block,
                                      f"terminator of B{block.id}")
        if term.kind == "branch":
            if value is None or value.plane != Plane.of_type(BOOLEAN):
                self.fail(f"branch in B{block.id} is not on a boolean",
                          "STSA-TYP-005")
        elif term.kind == "return":
            expected = self.function.method.return_type
            if expected is VOID:
                if value is not None:
                    self.fail("void method returns a value",
                              "STSA-TYP-006")
            else:
                if value is None:
                    self.fail("missing return value", "STSA-TYP-006")
                if value.plane != Plane.of_type(expected):
                    self.fail(f"return value on plane {value.plane}, "
                              f"expected {Plane.of_type(expected)}",
                              "STSA-TYP-006")
        elif term.kind == "throw":
            if value is None or value.plane != Plane.safe(THROWABLE):
                self.fail("throw operand must be on the safe Throwable "
                          "plane", "STSA-TYP-007")

    # ------------------------------------------------------------------
    # per-instruction rules

    def _verify_instr(self, block: Block, instr: Instr) -> None:
        handler = getattr(self, "_rule_" + type(instr).__name__.lower(), None)
        if handler is not None:
            handler(block, instr)
        plane = instr.plane
        if plane is not None and plane.kind != "safeidx" \
                and plane.type not in self.table:
            self.fail(f"v{instr.id} produces a value of type {plane.type} "
                      "absent from the type table", "STSA-TYP-004")

    def _require_plane(self, instr: Instr, index: int, plane: Plane) -> None:
        operand = instr.operands[index]
        if operand.plane != plane:
            self.fail(f"v{instr.id} operand {index} is on plane "
                      f"{operand.plane}, expected {plane}", "STSA-TYP-001")

    def _rule_const(self, block: Block, instr: ir.Const) -> None:
        if block is not self.function.entry:
            self.fail(f"const v{instr.id} outside the entry block",
                      "STSA-STR-001")
        if instr.type.is_reference() and instr.value is not None \
                and not isinstance(instr.value, str):
            self.fail(f"const v{instr.id} has a non-null reference value",
                      "STSA-STR-005")

    def _rule_param(self, block: Block, instr: ir.Param) -> None:
        if block is not self.function.entry:
            self.fail(f"param v{instr.id} outside the entry block",
                      "STSA-STR-002")
        method = self.function.method
        arity = len(method.param_types) + (0 if method.is_static else 1)
        if not 0 <= instr.index < arity:
            self.fail(f"param index {instr.index} out of range",
                      "STSA-STR-003")
        if instr.plane.kind == "safe" and (method.is_static
                                           or instr.index != 0):
            self.fail("only 'this' may be pre-loaded on a safe plane",
                      "STSA-STR-004")

    def _rule_prim(self, block: Block, instr: ir.Prim) -> None:
        operation = instr.operation
        table = OPS_BY_TYPE.get(operation.base)
        if table is None or operation not in table:
            self.fail(f"unknown operation {operation.qualified_name}",
                      "STSA-TYP-002")
        if len(instr.operands) != len(operation.params):
            self.fail(f"v{instr.id} wrong arity for "
                      f"{operation.qualified_name}", "STSA-TYP-003")
        for i, param in enumerate(operation.params):
            self._require_plane(instr, i, Plane.of_type(param))

    def _rule_refcmp(self, block: Block, instr: ir.RefCmp) -> None:
        plane = Plane.of_type(instr.plane_type)
        self._require_plane(instr, 0, plane)
        self._require_plane(instr, 1, plane)

    def _rule_nullcheck(self, block: Block, instr: ir.NullCheck) -> None:
        self._require_plane(instr, 0, Plane.of_type(instr.ref_type))
        if not instr.ref_type.is_reference():
            self.fail("nullcheck of a non-reference type", "STSA-TYP-010")

    def _rule_idxcheck(self, block: Block, instr: ir.IdxCheck) -> None:
        array = instr.array
        if array.plane.kind != "safe" \
                or not isinstance(array.plane.type, ArrayType):
            self.fail(f"idxcheck v{instr.id} array operand is not a safe "
                      "array reference", "STSA-MEM-005")
        self._require_plane(instr, 1, Plane.of_type(INT))
        if instr.plane.kind != "safeidx" or instr.plane.key is not array:
            self.fail(f"idxcheck v{instr.id} result plane mismatch",
                      "STSA-MEM-007")

    def _rule_upcast(self, block: Block, instr: ir.Upcast) -> None:
        operand = instr.operands[0]
        if operand.plane.kind != "ref" or not instr.target_type.is_reference():
            self.fail(f"upcast v{instr.id} must move between reference "
                      "planes", "STSA-TYP-009")

    def _rule_downcast(self, block: Block, instr: ir.Downcast) -> None:
        source = instr.operands[0].plane
        target = instr.plane
        ok = (source.kind in ("ref", "safe")
              and target.kind in ("ref", "safe")
              and not (source.kind == "ref" and target.kind == "safe")
              and self.world.is_subtype(source.type, target.type))
        if not ok:
            self.fail(f"illegal downcast {source} -> {target}",
                      "STSA-TYP-008")

    def _safe_base(self, instr: Instr, index: int, base_type: Type,
                   what: str) -> None:
        operand = instr.operands[index]
        if operand.plane != Plane.safe(base_type):
            self.fail(f"{what} v{instr.id} object operand on plane "
                      f"{operand.plane}, expected {Plane.safe(base_type)}",
                      "STSA-MEM-001")

    def _rule_getfield(self, block: Block, instr: ir.GetField) -> None:
        self._safe_base(instr, 0, instr.base.type, "getfield")
        if instr.field.is_static:
            self.fail("getfield of a static field", "STSA-MEM-002")
        if instr.field not in self.table.field_table(instr.base):
            self.fail(f"field {instr.field.name} not reachable from "
                      f"{instr.base.name}", "STSA-MEM-003")

    def _rule_setfield(self, block: Block, instr: ir.SetField) -> None:
        self._safe_base(instr, 0, instr.base.type, "setfield")
        if instr.field.is_static:
            self.fail("setfield of a static field", "STSA-MEM-002")
        if instr.field not in self.table.field_table(instr.base):
            self.fail(f"field {instr.field.name} not reachable from "
                      f"{instr.base.name}", "STSA-MEM-003")
        self._require_plane(instr, 1, Plane.of_type(instr.field.type))

    def _rule_getstatic(self, block: Block, instr: ir.GetStatic) -> None:
        if not instr.field.is_static:
            self.fail("getstatic of an instance field", "STSA-MEM-002")

    def _rule_setstatic(self, block: Block, instr: ir.SetStatic) -> None:
        if not instr.field.is_static:
            self.fail("setstatic of an instance field", "STSA-MEM-002")
        if instr.field.is_final and instr.field.declaring.is_builtin:
            self.fail("setstatic of a final library field", "STSA-MEM-004")
        self._require_plane(instr, 0, Plane.of_type(instr.field.type))

    def _elt_planes(self, instr: Instr) -> None:
        array = instr.operands[0]
        if array.plane != Plane.safe(instr.array_type):
            self.fail(f"v{instr.id} array operand on plane {array.plane}, "
                      f"expected {Plane.safe(instr.array_type)}",
                      "STSA-MEM-005")
        index = instr.operands[1]
        if index.plane.kind != "safeidx" or index.plane.key is not array:
            self.fail(f"v{instr.id} index operand is not a safe index of "
                      "the same array value", "STSA-MEM-006")

    def _rule_getelt(self, block: Block, instr: ir.GetElt) -> None:
        self._elt_planes(instr)

    def _rule_setelt(self, block: Block, instr: ir.SetElt) -> None:
        self._elt_planes(instr)
        self._require_plane(
            instr, 2, Plane.of_type(instr.array_type.element))

    def _rule_arraylen(self, block: Block, instr: ir.ArrayLen) -> None:
        if instr.operands[0].plane != Plane.safe(instr.array_type):
            self.fail(f"arraylen v{instr.id} operand plane mismatch",
                      "STSA-MEM-005")

    def _rule_newarray(self, block: Block, instr: ir.NewArray) -> None:
        self._require_plane(instr, 0, Plane.of_type(INT))

    def _rule_instanceof(self, block: Block, instr: ir.InstanceOf) -> None:
        if instr.operands[0].plane.kind != "ref":
            self.fail(f"instanceof v{instr.id} operand must be an unsafe "
                      "reference", "STSA-TYP-011")
        if not instr.target_type.is_reference():
            self.fail("instanceof against a non-reference type",
                      "STSA-TYP-011")

    def _rule_call(self, block: Block, instr: ir.Call) -> None:
        method = instr.method
        if method not in self.table.method_table(instr.base):
            self.fail(f"method {method.name} not reachable from "
                      f"{instr.base.name}", "STSA-MEM-003")
        if instr.dispatch and method.is_static:
            self.fail("xdispatch of a static method", "STSA-CALL-001")
        expected = list(method.param_types)
        offset = 0
        if not method.is_static:
            self._safe_base(instr, 0, instr.base.type, instr.opcode)
            offset = 1
        if len(instr.operands) != offset + len(expected):
            self.fail(f"{instr.opcode} v{instr.id} wrong arity",
                      "STSA-TYP-003")
        for i, param in enumerate(expected):
            self._require_plane(instr, offset + i, Plane.of_type(param))


def verify_function(module: Module, function: Function, *,
                    analyses=None) -> None:
    """Raise :class:`VerifyError` if ``function`` is ill-formed.

    ``analyses`` is an optional :class:`repro.analysis.manager.
    AnalysisManager` -- when given, the dominator tree is fetched from
    (and cached in) it instead of being recomputed.
    """
    _FunctionVerifier(module, function, analyses=analyses).verify()


def verify_module(module: Module, *, analyses=None) -> None:
    """Verify every function of a module."""
    for function in module.functions.values():
        verify_function(module, function, analyses=analyses)


def collect_diagnostics(module: Module,
                        function: Optional[Function] = None, *,
                        analyses=None) -> list[Diagnostic]:
    """Collect *all* verifier diagnostics instead of failing fast.

    Returns every well-formedness error plus warning-severity findings
    (unreachable blocks) for ``function``, or for every function of
    ``module`` when ``function`` is None.  ``analyses`` optionally
    shares cached dominator trees, as in :func:`verify_function`.
    """
    functions = [function] if function is not None \
        else list(module.functions.values())
    diagnostics: list[Diagnostic] = []
    for target in functions:
        verifier = _FunctionVerifier(module, target, collect=True,
                                     analyses=analyses)
        verifier.verify()
        diagnostics.extend(verifier.diagnostics)
    return diagnostics
