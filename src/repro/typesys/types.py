"""Core type objects for the MiniJava++ language and the SafeTSA model.

Types are interned value objects: two structurally equal types compare and
hash equal, so they can key register planes, CSE tables and type-table
indices directly.
"""

from __future__ import annotations

from typing import Optional

_PRIMITIVE_NAMES = ("int", "long", "float", "double", "boolean", "char", "void")

# Numeric widening partial order (Java 5.1.2, minus byte/short).
_WIDENINGS = {
    "char": {"int", "long", "float", "double"},
    "int": {"long", "float", "double"},
    "long": {"float", "double"},
    "float": {"double"},
}


class Type:
    """Abstract base of all MiniJava++ types."""

    #: short categorical tag, set by subclasses
    kind: str = "?"

    def is_reference(self) -> bool:
        return False

    def is_numeric(self) -> bool:
        return False

    def is_integral(self) -> bool:
        return False

    def descriptor(self) -> str:
        """JVM-style descriptor string (used by the class-file baseline)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self}>"


class PrimitiveType(Type):
    """One of Java's primitive types (plus ``void``)."""

    kind = "primitive"
    _interned: dict[str, "PrimitiveType"] = {}

    def __new__(cls, name: str) -> "PrimitiveType":
        if name not in _PRIMITIVE_NAMES:
            raise ValueError(f"unknown primitive type {name!r}")
        cached = cls._interned.get(name)
        if cached is None:
            cached = super().__new__(cls)
            cached.name = name
            cls._interned[name] = cached
        return cached

    def is_numeric(self) -> bool:
        return self.name in ("int", "long", "float", "double", "char")

    def is_integral(self) -> bool:
        return self.name in ("int", "long", "char")

    def descriptor(self) -> str:
        return {
            "int": "I",
            "long": "J",
            "float": "F",
            "double": "D",
            "boolean": "Z",
            "char": "C",
            "void": "V",
        }[self.name]

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash(("prim", self.name))


INT = PrimitiveType("int")
LONG = PrimitiveType("long")
FLOAT = PrimitiveType("float")
DOUBLE = PrimitiveType("double")
BOOLEAN = PrimitiveType("boolean")
CHAR = PrimitiveType("char")
VOID = PrimitiveType("void")


class NullType(Type):
    """The type of the ``null`` literal; subtype of every reference type."""

    kind = "null"
    _instance: Optional["NullType"] = None

    def __new__(cls) -> "NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def is_reference(self) -> bool:
        return True

    def descriptor(self) -> str:
        return "Ljava/lang/Object;"

    def __str__(self) -> str:
        return "null-type"

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash("null-type")


NULL = NullType()


class ClassType(Type):
    """A class (or built-in library class) reference type.

    Identity is by qualified name; the :class:`~repro.typesys.world.World`
    holds the corresponding :class:`~repro.typesys.world.ClassInfo`.
    """

    kind = "class"

    def __init__(self, name: str):
        self.name = name

    def is_reference(self) -> bool:
        return True

    def descriptor(self) -> str:
        return "L" + self.name.replace(".", "/") + ";"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("class", self.name))


class ArrayType(Type):
    """An array type ``element[]``."""

    kind = "array"

    def __init__(self, element: Type):
        if element is VOID:
            raise ValueError("cannot form an array of void")
        self.element = element

    def is_reference(self) -> bool:
        return True

    def descriptor(self) -> str:
        return "[" + self.element.descriptor()

    def __str__(self) -> str:
        return f"{self.element}[]"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArrayType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("array", self.element))


OBJECT = ClassType("java.lang.Object")
STRING = ClassType("java.lang.String")
THROWABLE = ClassType("java.lang.Throwable")


def widens_to(src: Type, dst: Type) -> bool:
    """True when a primitive ``src`` value widens implicitly to ``dst``."""
    if src == dst:
        return True
    if isinstance(src, PrimitiveType) and isinstance(dst, PrimitiveType):
        return dst.name in _WIDENINGS.get(src.name, ())
    return False


def binary_numeric_promotion(left: Type, right: Type) -> Optional[PrimitiveType]:
    """Java binary numeric promotion (5.6.2), restricted to our primitives."""
    if not (left.is_numeric() and right.is_numeric()):
        return None
    names = {left.name, right.name}  # type: ignore[union-attr]
    for wide in ("double", "float", "long"):
        if wide in names:
            return PrimitiveType(wide)
    return INT
