"""UAST node definitions.

Statements form the structured control skeleton; expressions are operand
trees whose evaluation emits SafeTSA instructions in tree order.  After
normalisation, expressions contain no assignments and no control flow --
every side effect other than calls/allocation/traps lives in a statement.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.ast import LocalVar
from repro.typesys.ops import Operation
from repro.typesys.types import ArrayType, ClassType, Type
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo


class UNode:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}>"


# ======================================================================
# expressions

class UExpr(UNode):
    __slots__ = ("type",)

    def __init__(self, type: Type):
        self.type = type


class EConst(UExpr):
    """A constant: int/long/float/double/char/boolean value, string, or
    null (value None with a reference type)."""

    __slots__ = ("value",)

    def __init__(self, type: Type, value: object):
        super().__init__(type)
        self.value = value


class ELocal(UExpr):
    __slots__ = ("local",)

    def __init__(self, local: LocalVar):
        super().__init__(local.type)
        self.local = local


class EGetField(UExpr):
    __slots__ = ("obj", "field")

    def __init__(self, obj: UExpr, field: FieldInfo):
        super().__init__(field.type)
        self.obj = obj
        self.field = field


class EGetStatic(UExpr):
    __slots__ = ("field",)

    def __init__(self, field: FieldInfo):
        super().__init__(field.type)
        self.field = field


class EArrayGet(UExpr):
    __slots__ = ("array", "index")

    def __init__(self, type: Type, array: UExpr, index: UExpr):
        super().__init__(type)
        self.array = array
        self.index = index


class EArrayLen(UExpr):
    __slots__ = ("array",)

    def __init__(self, type: Type, array: UExpr):
        super().__init__(type)
        self.array = array


class EPrim(UExpr):
    """Application of a type-table operation (primitive or xprimitive)."""

    __slots__ = ("operation", "args")

    def __init__(self, operation: Operation, args: list[UExpr]):
        super().__init__(operation.result)
        self.operation = operation
        self.args = args


class ERefCmp(UExpr):
    """Reference equality on a common-supertype plane."""

    __slots__ = ("is_eq", "plane_type", "left", "right")

    def __init__(self, type: Type, is_eq: bool, plane_type: Type,
                 left: UExpr, right: UExpr):
        super().__init__(type)
        self.is_eq = is_eq
        self.plane_type = plane_type
        self.left = left
        self.right = right


class ECall(UExpr):
    """Method invocation.  ``receiver`` is None for static methods;
    ``dispatch`` selects xdispatch (virtual) vs xcall (static binding)."""

    __slots__ = ("method", "receiver", "args", "dispatch", "base")

    def __init__(self, method: MethodInfo, receiver: Optional[UExpr],
                 args: list[UExpr], dispatch: bool, base: ClassInfo):
        super().__init__(method.return_type)
        self.method = method
        self.receiver = receiver
        self.args = args
        self.dispatch = dispatch
        #: static type whose method table names ``method``
        self.base = base


class ENew(UExpr):
    __slots__ = ("class_info", "ctor", "args")

    def __init__(self, class_info: ClassInfo, ctor: MethodInfo,
                 args: list[UExpr]):
        super().__init__(class_info.type)
        self.class_info = class_info
        self.ctor = ctor
        self.args = args


class ENewArray(UExpr):
    __slots__ = ("array_type", "length")

    def __init__(self, array_type: ArrayType, length: UExpr):
        super().__init__(array_type)
        self.array_type = array_type
        self.length = length


class ENewMultiArray(UExpr):
    """Multi-dimensional allocation ``new T[d0][d1]...``.

    The bytecode baseline emits ``multianewarray`` (as javac does); the
    SafeTSA side, which has no such primitive, lowers this to explicit
    nested allocation loops during SSA construction.
    """

    __slots__ = ("array_type", "dims")

    def __init__(self, array_type: ArrayType, dims: list[UExpr]):
        super().__init__(array_type)
        self.array_type = array_type
        self.dims = dims


class EInstanceOf(UExpr):
    __slots__ = ("target_type", "operand")

    def __init__(self, type: Type, target_type: Type, operand: UExpr):
        super().__init__(type)
        self.target_type = target_type
        self.operand = operand


class ECheckedCast(UExpr):
    """The paper's *upcast*: a dynamically checked cast (may throw)."""

    __slots__ = ("operand",)

    def __init__(self, target_type: Type, operand: UExpr):
        super().__init__(target_type)
        self.operand = operand


class EWidenRef(UExpr):
    """The paper's *downcast*: a statically safe reference widening
    (no runtime effect; moves the value to the supertype's plane)."""

    __slots__ = ("operand",)

    def __init__(self, target_type: Type, operand: UExpr):
        super().__init__(target_type)
        self.operand = operand


# ======================================================================
# statements

class UStmt(UNode):
    __slots__ = ()


class SBlock(UStmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: list[UStmt]):
        self.stmts = stmts


class SLocalWrite(UStmt):
    __slots__ = ("local", "value")

    def __init__(self, local: LocalVar, value: UExpr):
        self.local = local
        self.value = value


class SFieldWrite(UStmt):
    __slots__ = ("obj", "field", "value")

    def __init__(self, obj: UExpr, field: FieldInfo, value: UExpr):
        self.obj = obj
        self.field = field
        self.value = value


class SStaticWrite(UStmt):
    __slots__ = ("field", "value")

    def __init__(self, field: FieldInfo, value: UExpr):
        self.field = field
        self.value = value


class SArrayWrite(UStmt):
    __slots__ = ("array", "index", "value")

    def __init__(self, array: UExpr, index: UExpr, value: UExpr):
        self.array = array
        self.index = index
        self.value = value


class SEval(UStmt):
    """Evaluate an expression for its effects (calls, allocation)."""

    __slots__ = ("expr",)

    def __init__(self, expr: UExpr):
        self.expr = expr


class SIf(UStmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: UExpr, then_body: UStmt,
                 else_body: Optional[UStmt]):
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class SWhile(UStmt):
    """``while`` loop; the condition is evaluated in the loop header,
    which is the phi block.  ``SBreak(break_id)`` exits the loop,
    ``SContinue(continue_id)`` jumps back to the header."""

    __slots__ = ("break_id", "continue_id", "cond", "body")

    def __init__(self, break_id: int, continue_id: int, cond: UExpr,
                 body: UStmt):
        self.break_id = break_id
        self.continue_id = continue_id
        self.cond = cond
        self.body = body


class SDoWhile(UStmt):
    """``do``/``while``; the body entry is the phi block, the condition is
    evaluated at the bottom.  ``SContinue(continue_id)`` jumps to the
    condition evaluation."""

    __slots__ = ("break_id", "continue_id", "body", "cond")

    def __init__(self, break_id: int, continue_id: int, body: UStmt,
                 cond: UExpr):
        self.break_id = break_id
        self.continue_id = continue_id
        self.body = body
        self.cond = cond


class SLabeled(UStmt):
    """A labeled region: ``SBreak(target_id)`` exits past its end."""

    __slots__ = ("target_id", "body")

    def __init__(self, target_id: int, body: UStmt):
        self.target_id = target_id
        self.body = body


class SBreak(UStmt):
    __slots__ = ("target_id",)

    def __init__(self, target_id: int):
        self.target_id = target_id


class SContinue(UStmt):
    __slots__ = ("target_id",)

    def __init__(self, target_id: int):
        self.target_id = target_id


class SReturn(UStmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[UExpr]):
        self.value = value


class SThrow(UStmt):
    __slots__ = ("value",)

    def __init__(self, value: UExpr):
        self.value = value


class UCatch(UNode):
    __slots__ = ("catch_class", "local", "body")

    def __init__(self, catch_class: ClassInfo, local: LocalVar, body: UStmt):
        self.catch_class = catch_class
        self.local = local
        self.body = body


class STry(UStmt):
    """``try`` with catch clauses (``finally`` was lowered away).
    Unmatched exceptions are rethrown by the implicit default catch."""

    __slots__ = ("body", "catches")

    def __init__(self, body: UStmt, catches: list[UCatch]):
        self.body = body
        self.catches = catches


class UMethod(UNode):
    """A compiled method body: its locals and the UAST statement tree."""

    __slots__ = ("method", "locals", "body")

    def __init__(self, method: MethodInfo, locals: list[LocalVar],
                 body: SBlock):
        self.method = method
        self.locals = locals
        self.body = body
