"""Per-tenant quotas: request rate, stored bytes, compile seconds.

Serving hostile-adjacent traffic means no tenant may exhaust a shared
resource: the three quotas bound the three ways a client can spend
server capacity -- request frequency (a fixed window counter), bytes
parked in the module store (a monotone meter; content-addressed storage
is deduplicated, so a tenant is only charged for bytes it introduced),
and producer CPU (compile wall-seconds; cache and coalescing hits are
free, which is exactly the incentive we want).

Every check either passes or raises :class:`ServeError` with the
matching stable code (``SERVE-RATE`` / ``SERVE-QUOTA-BYTES`` /
``SERVE-QUOTA-COMPILE``).  The clock is injectable so the conformance
suite drives the rate window deterministically
(:class:`ManualClock` in ``tests/conftest.py``'s ``serve_client``
fixture); production uses ``time.monotonic``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.serve.errors import ServeError


class ManualClock:
    """A clock that moves only when told to -- deterministic tests."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now

    def __call__(self) -> float:
        return self.now


@dataclass(frozen=True)
class TenantLimits:
    """The per-tenant budget.  ``None`` disables that quota."""

    requests_per_window: Optional[int] = 600
    window_seconds: float = 60.0
    stored_bytes: Optional[int] = 64 * 1024 * 1024
    compile_seconds: Optional[float] = 120.0


class QuotaManager:
    """Meters every tenant against one :class:`TenantLimits`."""

    def __init__(self, limits: Optional[TenantLimits] = None, *,
                 clock: Callable[[], float] = time.monotonic):
        self.limits = limits or TenantLimits()
        self._clock = clock
        #: tenant -> (window start, requests in window)
        self._windows: dict[str, tuple[float, int]] = {}
        self._stored: dict[str, int] = {}
        self._compile: dict[str, float] = {}

    # -- request rate ---------------------------------------------------

    def check_rate(self, tenant: str) -> None:
        """Count one request; reject once the window budget is spent."""
        budget = self.limits.requests_per_window
        if budget is None:
            return
        now = self._clock()
        start, count = self._windows.get(tenant, (now, 0))
        if now - start >= self.limits.window_seconds:
            start, count = now, 0
        if count >= budget:
            raise ServeError(
                f"tenant {tenant!r} exceeded {budget} requests per "
                f"{self.limits.window_seconds:g}s window", "SERVE-RATE",
                {"tenant": tenant, "limit": budget,
                 "window_seconds": self.limits.window_seconds})
        self._windows[tenant] = (start, count + 1)

    # -- stored bytes ---------------------------------------------------

    def charge_stored(self, tenant: str, nbytes: int) -> None:
        """Charge ``nbytes`` of new store growth to ``tenant``."""
        limit = self.limits.stored_bytes
        used = self._stored.get(tenant, 0)
        if limit is not None and used + nbytes > limit:
            raise ServeError(
                f"tenant {tenant!r} would store {used + nbytes} bytes "
                f"(limit {limit})", "SERVE-QUOTA-BYTES",
                {"tenant": tenant, "limit": limit, "used": used,
                 "requested": nbytes})
        self._stored[tenant] = used + nbytes

    # -- compile seconds ------------------------------------------------

    def check_compile(self, tenant: str) -> None:
        """Reject before starting a compile for an exhausted tenant."""
        limit = self.limits.compile_seconds
        used = self._compile.get(tenant, 0.0)
        if limit is not None and used >= limit:
            raise ServeError(
                f"tenant {tenant!r} spent {used:.3f}s of its "
                f"{limit:g}s compile budget", "SERVE-QUOTA-COMPILE",
                {"tenant": tenant, "limit": limit,
                 "used": round(used, 6)})

    def charge_compile(self, tenant: str, seconds: float) -> None:
        self._compile[tenant] = \
            self._compile.get(tenant, 0.0) + max(seconds, 0.0)

    # -- reporting ------------------------------------------------------

    def usage(self, tenant: str) -> dict:
        window = self._windows.get(tenant)
        return {
            "tenant": tenant,
            "requests_in_window": window[1] if window else 0,
            "stored_bytes": self._stored.get(tenant, 0),
            "compile_seconds": round(self._compile.get(tenant, 0.0), 6),
        }

    def tenants(self) -> list[str]:
        names = set(self._windows) | set(self._stored) | set(self._compile)
        return sorted(names)
