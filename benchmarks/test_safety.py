"""E6 -- the safety claims (Sections 1, 2, 10).

"SafeTSA is safe by construction, and cannot be manipulated to give
unsafe programs."  Operationally: any mutation of a wire stream either
fails to decode or decodes to a module that still passes full
verification -- there is no bit pattern that yields an ill-formed
program.  A deterministic xorshift PRNG drives the mutation fuzzing.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import corpus_source
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.pipeline import compile_to_module
from repro.tsa.verifier import VerifyError, verify_module


class XorShift:
    """Deterministic PRNG (no global random state in benchmarks)."""

    def __init__(self, seed: int = 0x9E3779B9):
        self.state = seed or 1

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def below(self, n: int) -> int:
        return self.next() % n


@pytest.fixture(scope="module")
def wire():
    module = compile_to_module(corpus_source("Parser"), optimize=True)
    return encode_module(module)


def _attempt(data: bytes) -> str:
    """Decode + verify; classify the outcome."""
    try:
        module = decode_module(data)
    except DecodeError:
        return "rejected"
    except RecursionError:  # pathological nesting guarded upstream
        return "rejected"
    try:
        verify_module(module)
    except VerifyError as error:  # pragma: no cover - would be a bug
        raise AssertionError(
            f"decoder accepted an ill-formed module: {error}")
    return "accepted"


def test_bit_flip_fuzzing(wire):
    """Single bit flips: every outcome is reject-or-valid."""
    rng = XorShift(1)
    outcomes = {"rejected": 0, "accepted": 0}
    for _ in range(120):
        position = rng.below(len(wire) * 8)
        mutated = bytearray(wire)
        mutated[position // 8] ^= 1 << (position % 8)
        outcomes[_attempt(bytes(mutated))] += 1
    print(f"\nbit flips: {outcomes}")
    assert outcomes["rejected"] + outcomes["accepted"] == 120


def test_byte_corruption_fuzzing(wire):
    rng = XorShift(7)
    outcomes = {"rejected": 0, "accepted": 0}
    for _ in range(80):
        mutated = bytearray(wire)
        for _ in range(1 + rng.below(4)):
            mutated[rng.below(len(mutated))] = rng.below(256)
        outcomes[_attempt(bytes(mutated))] += 1
    print(f"byte corruption: {outcomes}")
    assert outcomes["rejected"] + outcomes["accepted"] == 80


def test_truncation_fuzzing(wire):
    """Truncated streams can never smuggle a partial program through."""
    for length in range(0, len(wire), max(len(wire) // 60, 1)):
        outcome = _attempt(wire[:length])
        assert outcome == "rejected", f"truncation at {length} accepted"


def test_random_garbage_rejected():
    rng = XorShift(99)
    for size in (0, 1, 4, 16, 64, 256, 1024):
        data = bytes(rng.below(256) for _ in range(size))
        assert _attempt(data) == "rejected"


def test_magic_prefixed_garbage_rejected():
    from repro.encode.common import MAGIC
    rng = XorShift(1234)
    for size in (1, 8, 64, 512):
        data = MAGIC + bytes(rng.below(256) for _ in range(size))
        assert _attempt(data) == "rejected"


def test_figure1_attack_is_unrepresentable():
    """The paper's motivating attack (Section 2): reference a value from
    the wrong side of a phi-join.  In SafeTSA the reference is expressed
    relative to the dominator tree, so the layout cannot even *name* the
    non-dominating value."""
    from repro.ssa.ir import Block, Const, Function, Phi, Plane, Prim, Term
    from repro.ssa.cst import RBasic, RIf, RSeq, derive_cfg
    from repro.ssa.dominators import compute_dominators
    from repro.tsa.layout import FunctionLayout, LayoutError
    from repro.typesys.ops import lookup_op
    from repro.typesys.types import BOOLEAN, INT
    from repro.typesys.world import MethodInfo, World

    world = World()
    method = MethodInfo("attack", [], INT, is_static=True)
    method.declaring = world.require("java.lang.Object")
    function = Function(method, world.require("java.lang.Object"))
    entry = function.new_block()
    function.entry = entry
    cond = Const(BOOLEAN, True)
    entry.append(cond)
    entry.term = Term("branch", cond)
    then_block = function.new_block()
    then_value = Const(INT, 10)  # the value "(10)" from Figure 1
    then_block.append(then_value)
    then_block.term = Term("fall")
    else_block = function.new_block()
    else_value = Const(INT, 11)
    else_block.append(else_value)
    else_block.term = Term("fall")
    join = function.new_block()
    join.term = Term("return", None)
    function.cst = RSeq([
        RIf(entry, RBasic(then_block), RBasic(else_block)),
        RBasic(join),
    ])
    derive_cfg(function)
    layout = FunctionLayout(function)
    # the attack: from the join, reference the then-branch value directly
    with pytest.raises(LayoutError):
        layout.ref_of(join, then_value)
    # referencing it from its own block is of course fine
    assert layout.ref_of(then_block, then_value) == (0, 0)


def test_fuzz_throughput_benchmark(benchmark, wire):
    rng = XorShift(5)

    def one_round():
        mutated = bytearray(wire)
        mutated[rng.below(len(mutated))] ^= 0xFF
        return _attempt(bytes(mutated))

    outcome = benchmark(one_round)
    assert outcome in ("rejected", "accepted")
