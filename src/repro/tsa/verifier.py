"""SafeTSA verification.

The paper's central claim is that most of this never needs to run: the
wire format cannot *represent* an out-of-range ``(l, r)`` reference or a
wrong-plane operand, so consumer verification reduces to per-block,
per-plane counters (Section 9).  This module implements the full property
set explicitly so that

* hand-constructed (attack) modules can be checked,
* optimisation passes can assert they preserve well-formedness, and
* the cost of SafeTSA verification can be measured against JVM bytecode
  dataflow verification (experiment E5).

Checked properties:

1. the CST derives a consistent CFG (structure);
2. every operand's definition dominates its use -- same-block uses must
   be defined earlier (referential integrity, Section 2);
3. every operand lives on exactly the register plane the instruction
   implies (type separation, Sections 3-4);
4. phi operand counts match predecessor counts and each operand is
   available at the end of its predecessor;
5. symbolic references (types, fields, methods, operations) resolve in
   the tamper-proof tables;
6. exception discipline: a trapping instruction inside a try body
   terminates its subblock and the subblock has the exception edge to
   the correct dispatch block (Section 7).
"""

from __future__ import annotations

from typing import Optional

from repro.ssa.cst import CstError, derive_cfg, map_exception_contexts
from repro.ssa.dominators import compute_dominators
from repro.ssa import ir
from repro.ssa.ir import Block, Function, Instr, Module, Phi, Plane
from repro.typesys.ops import OPS_BY_TYPE
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    INT,
    PrimitiveType,
    Type,
    VOID,
)

THROWABLE = ClassType("java.lang.Throwable")


class VerifyError(Exception):
    """The module violates a SafeTSA well-formedness property."""


class _FunctionVerifier:
    def __init__(self, module: Module, function: Function):
        self.module = module
        self.world = module.world
        self.table = module.type_table
        self.function = function

    def fail(self, message: str) -> None:
        raise VerifyError(f"{self.function.name}: {message}")

    # ------------------------------------------------------------------

    def verify(self) -> None:
        function = self.function
        try:
            derive_cfg(function)
        except CstError as error:
            self.fail(f"bad control structure: {error}")
        self.domtree = compute_dominators(function)
        self.dispatch_of = map_exception_contexts(function.cst)
        self.linear: dict[int, tuple[Block, int]] = {}
        for block in function.blocks:
            for position, instr in enumerate(block.all_instrs()):
                self.linear[instr.id] = (block, position)
        for block in function.blocks:
            if block not in self.domtree.idom:
                continue  # unreachable blocks carry no code
            self._verify_block(block)

    # ------------------------------------------------------------------

    def _verify_block(self, block: Block) -> None:
        dispatch = self.dispatch_of.get(block.id)
        pred_kinds = {kind for _, kind in block.preds}
        if "exc" in pred_kinds and "norm" in pred_kinds:
            self.fail(f"B{block.id} mixes normal and exception predecessors")
        for phi in block.phis:
            self._verify_phi(block, phi)
        for position, instr in enumerate(block.instrs):
            self._verify_operand_dominance(block, instr)
            self._verify_instr(block, instr)
            if instr.traps and dispatch is not None:
                if position != len(block.instrs) - 1:
                    self.fail(
                        f"trapping v{instr.id} is not last in its subblock "
                        f"B{block.id}")
                if block.exc_succ() is not dispatch:
                    self.fail(
                        f"B{block.id} lacks the exception edge to its "
                        "dispatch block")
                if block.term is None or block.term.kind != "fall":
                    self.fail(
                        f"B{block.id} with a trapping tail must fall through")
            if isinstance(instr, ir.CaughtExc):
                if not block.preds or pred_kinds != {"exc"}:
                    self.fail(
                        f"caughtexc in B{block.id} which is not a dispatch "
                        "block")
        self._verify_term(block, dispatch)
        if block.exc_succ() is not None:
            term = block.term
            ends_with_trap = bool(block.instrs) and block.instrs[-1].traps
            if not (term is not None
                    and ((term.kind == "fall" and ends_with_trap)
                         or term.kind == "throw")):
                self.fail(f"B{block.id} has an exception edge but no "
                          "exception point")
            if block.exc_succ() is not dispatch:
                self.fail(f"B{block.id} exception edge escapes its try")

    def _verify_phi(self, block: Block, phi: Phi) -> None:
        if len(phi.operands) != len(block.preds):
            self.fail(f"phi v{phi.id} has {len(phi.operands)} operands for "
                      f"{len(block.preds)} predecessors")
        for operand, (pred, _kind) in zip(phi.operands, block.preds):
            if operand.plane != phi.plane:
                self.fail(f"phi v{phi.id} operand v{operand.id} is on plane "
                          f"{operand.plane}, not {phi.plane}")
            self._check_available_at_end(pred, operand,
                                         f"phi v{phi.id} operand")

    def _check_available_at_end(self, pred: Block, operand: Instr,
                                what: str) -> None:
        def_block, _pos = self.linear.get(operand.id, (None, -1))
        if def_block is None:
            self.fail(f"{what} v{operand.id} has no definition")
        if not self.domtree.dominates(def_block, pred):
            self.fail(f"{what} v{operand.id} (B{def_block.id}) does not "
                      f"dominate predecessor B{pred.id}")

    def _verify_operand_dominance(self, block: Block, instr: Instr) -> None:
        _, use_pos = self.linear[instr.id]
        for operand in instr.operands:
            entry = self.linear.get(operand.id)
            if entry is None:
                self.fail(f"v{instr.id} references undefined v{operand.id}")
            def_block, def_pos = entry
            if def_block is block:
                if def_pos >= use_pos:
                    self.fail(f"v{instr.id} uses v{operand.id} before its "
                              f"definition in B{block.id}")
            elif not self.domtree.dominates(def_block, block):
                self.fail(
                    f"v{instr.id} in B{block.id} references v{operand.id} "
                    f"in non-dominating B{def_block.id}")

    def _verify_term(self, block: Block, dispatch: Optional[Block]) -> None:
        term = block.term
        if term is None:
            self.fail(f"B{block.id} has no terminator")
        value = term.value
        if value is not None:
            entry = self.linear.get(value.id)
            if entry is None:
                self.fail(f"terminator of B{block.id} references undefined "
                          f"value")
            def_block, _pos = entry
            if def_block is not block \
                    and not self.domtree.dominates(def_block, block):
                self.fail(f"terminator of B{block.id} references "
                          "non-dominating value")
        if term.kind == "branch":
            if value is None or value.plane != Plane.of_type(BOOLEAN):
                self.fail(f"branch in B{block.id} is not on a boolean")
        elif term.kind == "return":
            expected = self.function.method.return_type
            if expected is VOID:
                if value is not None:
                    self.fail("void method returns a value")
            else:
                if value is None:
                    self.fail("missing return value")
                if value.plane != Plane.of_type(expected):
                    self.fail(f"return value on plane {value.plane}, "
                              f"expected {Plane.of_type(expected)}")
        elif term.kind == "throw":
            if value is None or value.plane != Plane.safe(THROWABLE):
                self.fail("throw operand must be on the safe Throwable "
                          "plane")

    # ------------------------------------------------------------------
    # per-instruction rules

    def _verify_instr(self, block: Block, instr: Instr) -> None:
        handler = getattr(self, "_rule_" + type(instr).__name__.lower(), None)
        if handler is not None:
            handler(block, instr)
        plane = instr.plane
        if plane is not None and plane.kind != "safeidx" \
                and plane.type not in self.table:
            self.fail(f"v{instr.id} produces a value of type {plane.type} "
                      "absent from the type table")

    def _require_plane(self, instr: Instr, index: int, plane: Plane) -> None:
        operand = instr.operands[index]
        if operand.plane != plane:
            self.fail(f"v{instr.id} operand {index} is on plane "
                      f"{operand.plane}, expected {plane}")

    def _rule_const(self, block: Block, instr: ir.Const) -> None:
        if block is not self.function.entry:
            self.fail(f"const v{instr.id} outside the entry block")
        if instr.type.is_reference() and instr.value is not None \
                and not isinstance(instr.value, str):
            self.fail(f"const v{instr.id} has a non-null reference value")

    def _rule_param(self, block: Block, instr: ir.Param) -> None:
        if block is not self.function.entry:
            self.fail(f"param v{instr.id} outside the entry block")
        method = self.function.method
        arity = len(method.param_types) + (0 if method.is_static else 1)
        if not 0 <= instr.index < arity:
            self.fail(f"param index {instr.index} out of range")
        if instr.plane.kind == "safe" and (method.is_static
                                           or instr.index != 0):
            self.fail("only 'this' may be pre-loaded on a safe plane")

    def _rule_prim(self, block: Block, instr: ir.Prim) -> None:
        operation = instr.operation
        table = OPS_BY_TYPE.get(operation.base)
        if table is None or operation not in table:
            self.fail(f"unknown operation {operation.qualified_name}")
        if len(instr.operands) != len(operation.params):
            self.fail(f"v{instr.id} wrong arity for "
                      f"{operation.qualified_name}")
        for i, param in enumerate(operation.params):
            self._require_plane(instr, i, Plane.of_type(param))

    def _rule_refcmp(self, block: Block, instr: ir.RefCmp) -> None:
        plane = Plane.of_type(instr.plane_type)
        self._require_plane(instr, 0, plane)
        self._require_plane(instr, 1, plane)

    def _rule_nullcheck(self, block: Block, instr: ir.NullCheck) -> None:
        self._require_plane(instr, 0, Plane.of_type(instr.ref_type))
        if not instr.ref_type.is_reference():
            self.fail("nullcheck of a non-reference type")

    def _rule_idxcheck(self, block: Block, instr: ir.IdxCheck) -> None:
        array = instr.array
        if array.plane.kind != "safe" \
                or not isinstance(array.plane.type, ArrayType):
            self.fail(f"idxcheck v{instr.id} array operand is not a safe "
                      "array reference")
        self._require_plane(instr, 1, Plane.of_type(INT))
        if instr.plane.kind != "safeidx" or instr.plane.key is not array:
            self.fail(f"idxcheck v{instr.id} result plane mismatch")

    def _rule_upcast(self, block: Block, instr: ir.Upcast) -> None:
        operand = instr.operands[0]
        if operand.plane.kind != "ref" or not instr.target_type.is_reference():
            self.fail(f"upcast v{instr.id} must move between reference "
                      "planes")

    def _rule_downcast(self, block: Block, instr: ir.Downcast) -> None:
        source = instr.operands[0].plane
        target = instr.plane
        ok = (source.kind in ("ref", "safe")
              and target.kind in ("ref", "safe")
              and not (source.kind == "ref" and target.kind == "safe")
              and self.world.is_subtype(source.type, target.type))
        if not ok:
            self.fail(f"illegal downcast {source} -> {target}")

    def _safe_base(self, instr: Instr, index: int, base_type: Type,
                   what: str) -> None:
        operand = instr.operands[index]
        if operand.plane != Plane.safe(base_type):
            self.fail(f"{what} v{instr.id} object operand on plane "
                      f"{operand.plane}, expected {Plane.safe(base_type)}")

    def _rule_getfield(self, block: Block, instr: ir.GetField) -> None:
        self._safe_base(instr, 0, instr.base.type, "getfield")
        if instr.field.is_static:
            self.fail("getfield of a static field")
        if instr.field not in self.table.field_table(instr.base):
            self.fail(f"field {instr.field.name} not reachable from "
                      f"{instr.base.name}")

    def _rule_setfield(self, block: Block, instr: ir.SetField) -> None:
        self._safe_base(instr, 0, instr.base.type, "setfield")
        if instr.field.is_static:
            self.fail("setfield of a static field")
        if instr.field not in self.table.field_table(instr.base):
            self.fail(f"field {instr.field.name} not reachable from "
                      f"{instr.base.name}")
        self._require_plane(instr, 1, Plane.of_type(instr.field.type))

    def _rule_getstatic(self, block: Block, instr: ir.GetStatic) -> None:
        if not instr.field.is_static:
            self.fail("getstatic of an instance field")

    def _rule_setstatic(self, block: Block, instr: ir.SetStatic) -> None:
        if not instr.field.is_static:
            self.fail("setstatic of an instance field")
        if instr.field.is_final and instr.field.declaring.is_builtin:
            self.fail("setstatic of a final library field")
        self._require_plane(instr, 0, Plane.of_type(instr.field.type))

    def _elt_planes(self, instr: Instr) -> None:
        array = instr.operands[0]
        if array.plane != Plane.safe(instr.array_type):
            self.fail(f"v{instr.id} array operand on plane {array.plane}, "
                      f"expected {Plane.safe(instr.array_type)}")
        index = instr.operands[1]
        if index.plane.kind != "safeidx" or index.plane.key is not array:
            self.fail(f"v{instr.id} index operand is not a safe index of "
                      "the same array value")

    def _rule_getelt(self, block: Block, instr: ir.GetElt) -> None:
        self._elt_planes(instr)

    def _rule_setelt(self, block: Block, instr: ir.SetElt) -> None:
        self._elt_planes(instr)
        self._require_plane(
            instr, 2, Plane.of_type(instr.array_type.element))

    def _rule_arraylen(self, block: Block, instr: ir.ArrayLen) -> None:
        if instr.operands[0].plane != Plane.safe(instr.array_type):
            self.fail(f"arraylen v{instr.id} operand plane mismatch")

    def _rule_newarray(self, block: Block, instr: ir.NewArray) -> None:
        self._require_plane(instr, 0, Plane.of_type(INT))

    def _rule_instanceof(self, block: Block, instr: ir.InstanceOf) -> None:
        if instr.operands[0].plane.kind != "ref":
            self.fail(f"instanceof v{instr.id} operand must be an unsafe "
                      "reference")
        if not instr.target_type.is_reference():
            self.fail("instanceof against a non-reference type")

    def _rule_call(self, block: Block, instr: ir.Call) -> None:
        method = instr.method
        if method not in self.table.method_table(instr.base):
            self.fail(f"method {method.name} not reachable from "
                      f"{instr.base.name}")
        if instr.dispatch and method.is_static:
            self.fail("xdispatch of a static method")
        expected = list(method.param_types)
        offset = 0
        if not method.is_static:
            self._safe_base(instr, 0, instr.base.type, instr.opcode)
            offset = 1
        if len(instr.operands) != offset + len(expected):
            self.fail(f"{instr.opcode} v{instr.id} wrong arity")
        for i, param in enumerate(expected):
            self._require_plane(instr, offset + i, Plane.of_type(param))


def verify_function(module: Module, function: Function) -> None:
    """Raise :class:`VerifyError` if ``function`` is ill-formed."""
    _FunctionVerifier(module, function).verify()


def verify_module(module: Module) -> None:
    """Verify every function of a module."""
    for function in module.functions.values():
        verify_function(module, function)
