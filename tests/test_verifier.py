"""Verifier rule tests: each well-formedness property, violated in
isolation, must be rejected (and the honest variant accepted)."""

import pytest

from repro.ssa.cst import RBasic, RIf, RSeq, derive_cfg
from repro.ssa.ir import (
    ArrayLen,
    Const,
    Downcast,
    Function,
    GetField,
    GetStatic,
    IdxCheck,
    Module,
    New,
    NewArray,
    NullCheck,
    Param,
    Phi,
    Plane,
    Prim,
    SetField,
    SetStatic,
    Term,
    Upcast,
)
from repro.tsa.verifier import VerifyError, verify_function
from repro.typesys.ops import lookup_op
from repro.typesys.table import TypeTable
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    DOUBLE,
    INT,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World


@pytest.fixture
def env():
    world = World()
    point = ClassInfo("Point", "java.lang.Object")
    point.add_field(FieldInfo("x", INT))
    point.add_field(FieldInfo("count", INT, is_static=True))
    world.define_class(point)
    world.link()
    table = TypeTable(world)
    table.declare_class(point)
    table.intern(ArrayType(INT))
    module = Module(world, table)
    module.classes.append(point)
    return world, table, module, point


def single_block_function(point, name="f", return_type=INT,
                          params=None, static=True):
    method = MethodInfo(name, params or [], return_type, is_static=static)
    point.add_method(method)
    function = Function(method, point)
    entry = function.new_block()
    function.entry = entry
    return function, entry


def finish(function, entry, term):
    entry.term = term
    function.cst = RSeq([RBasic(entry)])
    derive_cfg(function)
    return function


class TestReferentialIntegrity:
    def test_use_before_definition_in_block(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        late = Const(INT, 5)
        neg = Prim(lookup_op(INT, "neg"), [late])
        entry.append(neg)
        entry.append(late)  # defined after its use
        finish(function, entry, Term("return", neg))
        with pytest.raises(VerifyError, match="before its definition"):
            verify_function(module, function)

    def test_reference_across_branch_arms(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point, return_type=INT)
        cond = Const(BOOLEAN, True)
        entry.append(cond)
        entry.term = Term("branch", cond)
        then_block = function.new_block()
        secret = Const(INT, 1)
        then_block.append(secret)
        then_block.term = Term("fall")
        else_block = function.new_block()
        # the attack: use the then-value in the else arm
        leak = Prim(lookup_op(INT, "neg"), [secret])
        else_block.append(leak)
        else_block.term = Term("fall")
        join = function.new_block()
        join.term = Term("return", leak)
        function.cst = RSeq([
            RIf(entry, RBasic(then_block), RBasic(else_block)),
            RBasic(join)])
        derive_cfg(function)
        with pytest.raises(VerifyError):
            verify_function(module, function)

    def test_phi_operand_count_must_match_preds(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        cond = Const(BOOLEAN, True)
        entry.append(cond)
        seed = Const(INT, 1)
        entry.append(seed)
        entry.term = Term("branch", cond)
        a = function.new_block()
        va = Prim(lookup_op(INT, "neg"), [seed])
        a.append(va)
        a.term = Term("fall")
        b = function.new_block()
        vb = Prim(lookup_op(INT, "add"), [seed, seed])
        b.append(vb)
        b.term = Term("fall")
        join = function.new_block()
        phi = Phi(Plane.of_type(INT))
        phi.add_operand(va)  # only one operand for two preds
        join.append(phi)
        join.term = Term("return", phi)
        function.cst = RSeq([RIf(entry, RBasic(a), RBasic(b)),
                             RBasic(join)])
        derive_cfg(function)
        with pytest.raises(VerifyError, match="operands for"):
            verify_function(module, function)


class TestTypeSeparation:
    def test_wrong_primitive_plane(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point, return_type=INT)
        d = Const(DOUBLE, 1.5)
        entry.append(d)
        bad = Prim(lookup_op(INT, "neg"), [d])
        entry.append(bad)
        finish(function, entry, Term("return", bad))
        with pytest.raises(VerifyError, match="plane"):
            verify_function(module, function)

    def test_xprimitive_arity(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        one = Const(INT, 1)
        entry.append(one)
        bad = Prim.__new__(Prim)
        from repro.ssa.ir import Instr
        Instr.__init__(bad, Plane.of_type(INT), [one])
        bad.operation = lookup_op(INT, "div")
        entry.append(bad)
        finish(function, entry, Term("return", bad))
        with pytest.raises(VerifyError, match="arity"):
            verify_function(module, function)

    def test_branch_on_non_boolean(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        one = Const(INT, 1)
        entry.append(one)
        entry.term = Term("branch", one)
        a = function.new_block()
        ra = Const(INT, 0)
        a.append(ra)
        a.term = Term("return", ra)
        b = function.new_block()
        rb = Const(INT, 1)
        b.append(rb)
        rb2 = Prim(lookup_op(INT, "neg"), [rb])
        b.append(rb2)
        b.term = Term("return", rb2)
        function.cst = RSeq([RIf(entry, RBasic(a), RBasic(b))])
        derive_cfg(function)
        with pytest.raises(VerifyError, match="boolean"):
            verify_function(module, function)

    def test_return_plane_must_match_signature(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point, return_type=INT)
        d = Const(DOUBLE, 2.0)
        entry.append(d)
        finish(function, entry, Term("return", d))
        with pytest.raises(VerifyError, match="return value"):
            verify_function(module, function)


class TestMemorySafety:
    def test_getfield_requires_safe_plane(self, env):
        world, table, module, point = env
        function, entry = single_block_function(
            point, params=[point.type], static=True)
        ref = Param(0, point.type)
        entry.append(ref)
        function.params.append(ref)
        bad = GetField(point, ref, point.fields[0])
        entry.append(bad)
        finish(function, entry, Term("return", bad))
        with pytest.raises(VerifyError, match="safe"):
            verify_function(module, function)

    def test_getfield_of_static_field_rejected(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        obj = New(point)
        entry.append(obj)
        bad = GetField(point, obj, point.fields[1])  # static field
        entry.append(bad)
        finish(function, entry, Term("return", bad))
        with pytest.raises(VerifyError, match="static"):
            verify_function(module, function)

    def test_setstatic_of_instance_field_rejected(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point, return_type=INT)
        one = Const(INT, 1)
        entry.append(one)
        bad = SetStatic(point.fields[0], one)  # instance field
        entry.append(bad)
        finish(function, entry, Term("return", one))
        with pytest.raises(VerifyError, match="instance field"):
            verify_function(module, function)

    def test_getelt_requires_matching_safe_index(self, env):
        world, table, module, point = env
        arr_type = ArrayType(INT)
        function, entry = single_block_function(point, return_type=INT)
        length = Const(INT, 4)
        entry.append(length)
        arr1 = NewArray(arr_type, length)
        entry.append(arr1)
        arr2 = NewArray(arr_type, length)
        entry.append(arr2)
        index = Const(INT, 0)
        entry.append(index)
        checked = IdxCheck(arr1, index)
        entry.append(checked)
        from repro.ssa.ir import GetElt
        # the attack: index checked against arr1, used with arr2
        bad = GetElt(arr_type, arr2, checked)
        entry.append(bad)
        finish(function, entry, Term("return", bad))
        with pytest.raises(VerifyError, match="same array value"):
            verify_function(module, function)

    def test_illegal_downcast_rejected(self, env):
        world, table, module, point = env
        obj_type = ClassType("java.lang.Object")
        function, entry = single_block_function(
            point, return_type=INT, params=[obj_type])
        ref = Param(0, obj_type)
        entry.append(ref)
        function.params.append(ref)
        # Object -> Point is a narrowing: needs an upcast, not a downcast
        bad = Downcast(Plane.of_type(point.type), ref)
        entry.append(bad)
        check = NullCheck(point.type, bad)
        entry.append(check)
        field = GetField(point, check, point.fields[0])
        entry.append(field)
        finish(function, entry, Term("return", field))
        with pytest.raises(VerifyError, match="downcast"):
            verify_function(module, function)

    def test_downcast_cannot_fabricate_safety(self, env):
        world, table, module, point = env
        function, entry = single_block_function(
            point, return_type=INT, params=[point.type])
        ref = Param(0, point.type)
        entry.append(ref)
        function.params.append(ref)
        bad = Downcast(Plane.safe(point.type), ref)  # ref -> safe is forged
        entry.append(bad)
        field = GetField(point, bad, point.fields[0])
        entry.append(field)
        finish(function, entry, Term("return", field))
        with pytest.raises(VerifyError, match="downcast"):
            verify_function(module, function)

    def test_honest_checked_access_passes(self, env):
        world, table, module, point = env
        function, entry = single_block_function(
            point, return_type=INT, params=[point.type])
        ref = Param(0, point.type)
        entry.append(ref)
        function.params.append(ref)
        checked = NullCheck(point.type, ref)
        entry.append(checked)
        field = GetField(point, checked, point.fields[0])
        entry.append(field)
        finish(function, entry, Term("return", field))
        verify_function(module, function)

    def test_arraylen_requires_safe_array(self, env):
        world, table, module, point = env
        arr_type = ArrayType(INT)
        function, entry = single_block_function(
            point, return_type=INT, params=[arr_type])
        ref = Param(0, arr_type)
        entry.append(ref)
        function.params.append(ref)
        bad = ArrayLen(arr_type, ref)
        entry.append(bad)
        finish(function, entry, Term("return", bad))
        with pytest.raises(VerifyError, match="plane"):
            verify_function(module, function)


class TestStructure:
    def test_const_outside_entry_rejected(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        cond = Const(BOOLEAN, True)
        entry.append(cond)
        entry.term = Term("branch", cond)
        a = function.new_block()
        va = Const(INT, 1)  # const outside the entry block
        a.append(va)
        a.term = Term("return", va)
        b = function.new_block()
        vb = Prim(lookup_op(INT, "neg"),
                  [cond])  # also bogus, but we want the const error
        b.term = Term("return", None)
        function.cst = RSeq([RIf(entry, RBasic(a), RBasic(b))])
        derive_cfg(function)
        with pytest.raises(VerifyError):
            verify_function(module, function)

    def test_void_method_returning_value_rejected(self, env):
        from repro.typesys.types import VOID
        world, table, module, point = env
        function, entry = single_block_function(point, return_type=VOID)
        one = Const(INT, 1)
        entry.append(one)
        finish(function, entry, Term("return", one))
        with pytest.raises(VerifyError, match="void"):
            verify_function(module, function)

    def test_missing_terminator_rejected(self, env):
        world, table, module, point = env
        function, entry = single_block_function(point)
        function.cst = RSeq([RBasic(entry)])
        with pytest.raises(VerifyError):
            verify_function(module, function)
