"""E4 -- Section 8's decomposition of the optimisation win.

The paper: constant propagation contributes ~1-2% of program size, dead
code elimination 3-7% of instructions (mostly phis), and the majority --
5-14% -- comes from common subexpression elimination.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.bench.tables import ablation_table
from repro.opt.pipeline import optimize_module
from repro.pipeline import compile_to_module

CONFIGS = {
    "none": [],
    "constprop": ["constprop"],
    "cse": ["cse"],
    "dce": ["dce"],
    "all": ["constprop", "cse", "dce"],
}


def _counts_for(source: str) -> dict[str, int]:
    counts = {}
    for label, passes in CONFIGS.items():
        module = compile_to_module(source, prune_phis=False)
        if passes:
            optimize_module(module, passes)
        counts[label] = module.instruction_count()
    return counts


@pytest.fixture(scope="module")
def ablation():
    return [(name, _counts_for(corpus_source(name)))
            for name in CORPUS_PROGRAMS]


def test_ablation_table(ablation):
    print()
    print(ablation_table(ablation))
    total = {label: sum(counts[label] for _, counts in ablation)
             for label in CONFIGS}
    # every configuration is sound: never larger than the baseline
    for label in CONFIGS:
        assert total[label] <= total["none"], label
    # CSE provides the majority of the reduction (paper Section 8)
    cse_gain = total["none"] - total["cse"]
    constprop_gain = total["none"] - total["constprop"]
    dce_gain = total["none"] - total["dce"]
    assert cse_gain > constprop_gain, "CSE should beat constant propagation"
    assert cse_gain > dce_gain, "CSE should dominate the reduction"
    # the combination beats each individual pass
    assert total["all"] <= min(total["cse"], total["dce"],
                               total["constprop"])


def test_cse_gain_in_paper_band(ablation):
    """CSE alone removes a paper-like share of the instructions."""
    total_none = sum(counts["none"] for _, counts in ablation)
    total_cse = sum(counts["cse"] for _, counts in ablation)
    share = 1 - total_cse / total_none
    assert 0.03 < share < 0.30, f"CSE share {share:.1%} out of band"


def test_constprop_small_but_nonzero(ablation):
    total_none = sum(counts["none"] for _, counts in ablation)
    total_cp = sum(counts["constprop"] for _, counts in ablation)
    share = 1 - total_cp / total_none
    assert 0.0 <= share < 0.10, f"constprop share {share:.1%} out of band"


def test_each_config_preserves_semantics():
    from repro.interp.interpreter import Interpreter
    source = corpus_source("BigInt")
    expected = Interpreter(compile_to_module(source),
                           max_steps=50_000_000).run_main("BigInt").stdout
    for label, passes in CONFIGS.items():
        module = compile_to_module(source)
        if passes:
            optimize_module(module, passes)
        result = Interpreter(module, max_steps=50_000_000).run_main("BigInt")
        assert result.stdout == expected, f"{label} changed behaviour"


def test_cse_pass_benchmark(benchmark):
    from repro.opt.cse import run_cse
    source = corpus_source("Linpack")

    def run():
        module = compile_to_module(source)
        return sum(run_cse(f).eliminated
                   for f in module.functions.values())

    eliminated = benchmark(run)
    assert eliminated > 0
