"""Heap object model shared by both interpreters (SafeTSA and bytecode)."""

from __future__ import annotations

import itertools
from typing import Optional

from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    ClassType,
    PrimitiveType,
    Type,
)
from repro.typesys.world import ClassInfo

_object_counter = itertools.count(1)


def default_value(type: Type):
    """Java zero-initialisation value for a type."""
    if isinstance(type, PrimitiveType):
        if type.name in ("double", "float"):
            return 0.0
        if type.name == "boolean":
            return False
        return 0
    return None


class ObjectRef:
    """An instance of a user or builtin class."""

    __slots__ = ("class_info", "fields", "serial")

    def __init__(self, class_info: ClassInfo):
        self.class_info = class_info
        self.fields = [default_value(f.type)
                       for f in class_info.all_instance_fields]
        self.serial = next(_object_counter)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.class_info.name}@{self.serial}>"


class ArrayRef:
    """A Java array instance."""

    __slots__ = ("array_type", "elements", "serial")

    def __init__(self, array_type: ArrayType, length: int):
        self.array_type = array_type
        self.elements = [default_value(array_type.element)] * length
        self.serial = next(_object_counter)

    @property
    def length(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.array_type}[{self.length}]@{self.serial}>"


class JStr:
    """A Java String instance (wrapping a Python str).

    Reference equality must distinguish distinct instances with equal
    contents, so strings cannot be bare Python str values.  Literals are
    interned globally (one instance per value), matching Java.
    """

    __slots__ = ("value", "serial")
    _interned: dict[str, "JStr"] = {}

    def __init__(self, value: str):
        self.value = value
        self.serial = next(_object_counter)

    @classmethod
    def intern(cls, value: str) -> "JStr":
        cached = cls._interned.get(value)
        if cached is None:
            cached = cls(value)
            cls._interned[value] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover
        return f"JStr({self.value!r})"


class JavaError(Exception):
    """A Java exception in flight; ``value`` is the Throwable instance."""

    def __init__(self, value: ObjectRef):
        self.value = value
        super().__init__(value.class_info.name)


def runtime_class(world, value) -> Optional[ClassInfo]:
    """The dynamic class of a runtime value (None for null/primitives)."""
    if isinstance(value, ObjectRef):
        return value.class_info
    if isinstance(value, JStr):
        return world.require("java.lang.String")
    if isinstance(value, ArrayRef):
        return world.require("java.lang.Object")
    return None


def value_instanceof(world, value, target: Type) -> bool:
    """Java ``instanceof`` on runtime values (null is never an instance)."""
    if value is None:
        return False
    if isinstance(value, ArrayRef):
        if isinstance(target, ArrayType):
            if isinstance(value.array_type.element, PrimitiveType) \
                    or isinstance(target.element, PrimitiveType):
                return value.array_type == target
            return world.is_subtype(value.array_type, target)
        return isinstance(target, ClassType) \
            and target.name == "java.lang.Object"
    cls = runtime_class(world, value)
    if cls is None or not isinstance(target, ClassType):
        return False
    return cls.is_subclass_of(world.require(target.name))
