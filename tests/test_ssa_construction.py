"""SSA construction invariants: CFG canonicity, dominators, phi placement.

These are the structural guarantees everything else (layout, encoding,
verification) rests on, checked over hand-written programs and the whole
corpus.
"""

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.pipeline import compile_to_module
from repro.ssa.cst import cst_blocks, derive_cfg
from repro.ssa.dominators import compute_dominators, compute_dominators_lt
from repro.ssa.ir import Phi
from repro.tsa.verifier import verify_module


def edges_of(function):
    return {block.id: ([(p.id, k) for p, k in block.preds],
                       [(s.id, k) for s, k in block.succs])
            for block in function.blocks}


def compile_fn(source: str, cls: str, name: str):
    module = compile_to_module(source)
    return module, module.function_named(cls, name)


class TestCfgCanonicity:
    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_derive_cfg_reproduces_construction(self, program):
        module = compile_to_module(corpus_source(program))
        for function in module.functions.values():
            before = edges_of(function)
            derive_cfg(function)
            assert edges_of(function) == before, function.name

    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_dominator_algorithms_agree(self, program):
        module = compile_to_module(corpus_source(program))
        for function in module.functions.values():
            chk = compute_dominators(function)
            lt = compute_dominators_lt(function)
            assert {b.id: (p.id if p else None)
                    for b, p in chk.idom.items()} == \
                   {b.id: (p.id if p else None)
                    for b, p in lt.idom.items()}, function.name

    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_all_modules_verify(self, program):
        source = corpus_source(program)
        verify_module(compile_to_module(source))
        verify_module(compile_to_module(source, optimize=True))
        verify_module(compile_to_module(source, prune_phis=False))

    def test_cst_owns_every_block(self):
        module = compile_to_module(corpus_source("Parser"))
        for function in module.functions.values():
            owned = {b.id for b in cst_blocks(function.cst)}
            assert owned == {b.id for b in function.blocks}, function.name


class TestPhiPlacement:
    def test_if_join_gets_phi(self):
        _, fn = compile_fn(
            "class T { static int f(boolean c) {"
            "int x = 1; if (c) x = 2; else x = 3; return x; } }",
            "T", "f")
        phis = [p for b in fn.blocks for p in b.phis]
        assert len(phis) == 1
        assert len(phis[0].operands) == 2

    def test_loop_header_gets_phi(self):
        _, fn = compile_fn(
            "class T { static int f(int n) {"
            "int s = 0; int i = 0;"
            "while (i < n) { s = s + i; i = i + 1; } return s; } }",
            "T", "f")
        header_phis = [p for b in fn.blocks for p in b.phis]
        merged_vars = {p.var.name for p in header_phis}
        assert {"s", "i"} <= merged_vars

    def test_unassigned_variable_needs_no_phi(self):
        _, fn = compile_fn(
            "class T { static int f(boolean c, int k) {"
            "int x = 1; if (c) x = 2; return x + k; } }",
            "T", "f")
        merged = {p.var.name for b in fn.blocks for p in b.phis
                  if p.var is not None}
        assert "k" not in merged

    def test_phi_operand_order_matches_preds(self):
        module = compile_to_module(corpus_source("BigInt"))
        for function in module.functions.values():
            for block in function.blocks:
                for phi in block.phis:
                    assert len(phi.operands) == len(block.preds), \
                        f"{function.name} B{block.id}"

    def test_exception_point_values_reach_dispatch(self):
        # x's value at the trap (idxcheck) is what the handler observes
        _, fn = compile_fn(
            "class T { static int f(int[] a) {"
            "int x = 1;"
            "try { x = 2; int v = a[100]; x = 3; }"
            "catch (ArrayIndexOutOfBoundsException e) { return x; }"
            "return -x; } }",
            "T", "f")
        dispatches = [b for b in fn.blocks
                      if b.preds and all(k == "exc" for _, k in b.preds)]
        assert dispatches, "no dispatch block found"

    def test_break_edges_join_loop_exit(self):
        _, fn = compile_fn(
            "class T { static int f(int n) {"
            "int x = 0;"
            "while (true) { x = x + 1; if (x > n) break;"
            "if (x > 100) break; } return x; } }",
            "T", "f")
        exits = [b for b in fn.blocks if len(b.preds) >= 2
                 and b.term is not None and b.term.kind == "return"]
        assert exits


class TestStructuralProperties:
    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_entry_dominates_everything(self, program):
        module = compile_to_module(corpus_source(program))
        for function in module.functions.values():
            domtree = compute_dominators(function)
            for block in domtree.preorder:
                assert domtree.dominates(function.entry, block)

    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_every_operand_dominates_use(self, program):
        module = compile_to_module(corpus_source(program))
        for function in module.functions.values():
            domtree = compute_dominators(function)
            position = {}
            for block in function.blocks:
                for index, instr in enumerate(block.all_instrs()):
                    position[instr.id] = (block, index)
            for block in domtree.preorder:
                for index, instr in enumerate(block.instrs):
                    for operand in instr.operands:
                        def_block, def_pos = position[operand.id]
                        if def_block is block:
                            assert def_pos < len(block.phis) + index
                        else:
                            assert domtree.dominates(def_block, block), \
                                (function.name, instr, operand)

    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_phis_strictly_type_separated(self, program):
        module = compile_to_module(corpus_source(program))
        for function in module.functions.values():
            for block in function.blocks:
                for phi in block.phis:
                    for operand in phi.operands:
                        assert operand.plane == phi.plane, function.name

    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_memory_ops_take_safe_operands(self, program):
        module = compile_to_module(corpus_source(program))
        for function in module.functions.values():
            for block in function.blocks:
                for instr in block.instrs:
                    if instr.opcode in ("getfield", "setfield"):
                        assert instr.operands[0].plane.kind == "safe"
                    if instr.opcode in ("getelt", "setelt"):
                        assert instr.operands[0].plane.kind == "safe"
                        assert instr.operands[1].plane.kind == "safeidx"

    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_constants_preloaded_in_entry(self, program):
        module = compile_to_module(corpus_source(program))
        for function in module.functions.values():
            for block in function.blocks:
                for instr in block.instrs:
                    if instr.opcode in ("const", "param"):
                        assert block is function.entry, function.name

    def test_trapping_instructions_end_subblocks_in_try(self):
        module = compile_to_module(corpus_source("BinaryCode"))
        from repro.ssa.cst import map_exception_contexts
        for function in module.functions.values():
            contexts = map_exception_contexts(function.cst)
            for block in function.blocks:
                if contexts.get(block.id) is None:
                    continue
                for index, instr in enumerate(block.instrs):
                    if instr.traps:
                        assert index == len(block.instrs) - 1, \
                            f"{function.name} B{block.id}"
