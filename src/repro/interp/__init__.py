"""Reference interpreter for SafeTSA modules.

This is the consumer-side executor, standing in for the paper's
"dynamic class loader ... on-the-fly code generation" (Section 7): it runs
decoded SafeTSA directly, resolving dominator-scoped values through the
function's register state.  It is used for differential testing against
the JVM-bytecode baseline interpreter and for dynamic check-count
profiling.
"""

from repro.interp.heap import ArrayRef, JStr, JavaError, ObjectRef
from repro.interp.interpreter import ExecutionResult, Interpreter
from repro.interp.jit import JitCompiler

__all__ = [
    "ArrayRef",
    "JStr",
    "JavaError",
    "ObjectRef",
    "ExecutionResult",
    "Interpreter",
    "JitCompiler",
]
