"""SafeTSA wire format.

The encoder externalises a module in the paper's three phases
(Section 7): (1) the Control Structure Tree as a sequence of grammar
productions, (2) the basic blocks in dominator-tree pre-order, each
instruction as opcode, type operands, and ``(l, r)`` value references,
and (3) the phi-node operands, postponed because they may reference
instructions that follow them in the pre-order.

Every symbol is drawn from a finite alphabet determined entirely by the
preceding context -- the opcode list, the type table size, a member-table
size, or the number of registers currently visible on the relevant plane.
Symbols are written in phase-in (truncated binary) codes, "similar to
Huffman encoding with fixed equal probabilities for all symbols".  As a
consequence, a reference to a non-dominating or wrongly-typed value is
not merely rejected: it has no encoding at all.
"""

from repro.encode.bitio import BitReader, BitWriter
from repro.encode.serializer import encode_module
from repro.encode.deserializer import DecodeError, decode_module

__all__ = [
    "BitReader",
    "BitWriter",
    "encode_module",
    "decode_module",
    "DecodeError",
]
