"""Wire-format v2 (``repro.encode.format`` + ``repro.loader.stream``).

The acceptance contract for the distribution layer:

* resolution is *containment*: every v2 unit reduces to exact v1 bytes
  that then pass through the unmodified verifying decoder, and the
  default encode path is still bit-for-bit v1;
* reject-or-equivalent extends to envelopes: a missing dictionary, a
  tampered or mismatched delta, a truncated envelope -- each dies with
  its registered stable code, checked both by targeted probes and by a
  seeded mutation campaign;
* streaming is just v1 decoding split across feeds: any chunking of
  any corpus artifact produces the identical module, every truncation
  rejects, and ``main`` can execute while later bodies are pending.
"""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import STABLE_CODES
from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.cache import (
    CompilationCache,
    DictionaryStore,
    VerifiedModuleCache,
)
from repro.encode.common import MAGIC, MAGIC_V2, wire_format_version
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.format import (
    MAX_DICTIONARIES,
    MIN_DICTIONARY_BYTES,
    MODE_DELTA,
    MODE_FULL,
    blob_digest,
    build_shared_dictionary,
    encode_delta,
    encode_modules_v2,
    encode_v2,
    resolve_stream,
)
from repro.encode.serializer import encode_module
from repro.fuzz import run_campaign
from repro.interp.interpreter import Interpreter
from repro.loader import StreamingLoader, load_module, stream_module
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module


def _encode(source: str, optimize: bool = False) -> bytes:
    return encode_module(compile_to_module(source, optimize=optimize))


def _varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


SMALL_SOURCE = ("class T { static int f(int a, int b) { return a / b; }"
                "  static int g(int n) { int s = 0;"
                "  for (int i = 0; i < n; i = i + 1) { s = s + i; }"
                "  return s; } }")

RUN_SOURCE = ("class Main {"
              "  static int helper(int x) { return x * 3; }"
              "  static void main() { System.out.println(helper(14)); }"
              "  static int epilogue(int x) { return x + 1; }"
              "}")


@pytest.fixture(scope="module")
def corpus_wires():
    """The 20 benchmark artifacts: every corpus program, unoptimised
    and optimised."""
    wires = {}
    for name in CORPUS_PROGRAMS:
        source = corpus_source(name)
        for optimize in (False, True):
            wires[(name, optimize)] = _encode(source, optimize)
    return wires


def _observed(module):
    result = Interpreter(module).run_main()
    return (result.stdout, result.exception_name())


# ======================================================================
# envelopes and deltas resolve to exact v1 bytes


class TestEnvelopeRoundTrip:
    def test_default_encode_is_still_v1(self):
        module = compile_to_module(SMALL_SOURCE)
        wire = encode_module(module)
        assert wire.startswith(MAGIC)
        assert encode_module(module, format_version="stsa1") == wire

    def test_unknown_format_version_rejected(self):
        module = compile_to_module(SMALL_SOURCE)
        with pytest.raises(ValueError):
            encode_module(module, format_version="stsa9")

    def test_self_contained_envelope(self):
        wire = _encode(RUN_SOURCE)
        store = DictionaryStore()
        envelope = encode_v2(wire, store=store)
        assert envelope.startswith(MAGIC_V2)
        assert resolve_stream(envelope, store) == wire
        module = decode_module(envelope, store=store)
        verify_module(module)
        assert _observed(module) == ("42\n", None)

    def test_dictionary_envelope(self):
        wire = _encode(RUN_SOURCE)
        store = DictionaryStore()
        envelope = encode_v2(wire, (wire[:60],), store=store)
        assert resolve_stream(envelope, store) == wire
        assert len(envelope) < len(wire)  # 60-byte prefix became 32+6

    def test_encode_v2_rejects_non_prefix_dictionary(self):
        wire = _encode(SMALL_SOURCE)
        with pytest.raises(ValueError):
            encode_v2(wire, (b"\xff" * 16,), store=DictionaryStore())

    def test_serializer_v2_path(self):
        module = compile_to_module(SMALL_SOURCE)
        store = DictionaryStore()
        envelope = encode_module(module, format_version="stsa2",
                                 store=store)
        assert resolve_stream(envelope, store) == encode_module(module)

    def test_shared_dictionary_across_modules(self, corpus_wires):
        """A real publisher pair (plain + optimised Scanner) shares a
        long bit-packed header: factoring it must pay for itself."""
        plain = corpus_wires[("Scanner", False)]
        optimized = corpus_wires[("Scanner", True)]
        dictionary = build_shared_dictionary([plain, optimized])
        assert plain.startswith(dictionary)
        assert optimized.startswith(dictionary)
        assert len(dictionary) >= MIN_DICTIONARY_BYTES
        store = DictionaryStore()
        envelopes = encode_modules_v2([plain, optimized], store=store)
        assert resolve_stream(envelopes[0], store) == plain
        assert resolve_stream(envelopes[1], store) == optimized
        # the factored pair plus the blob once beats shipping raw
        shipped = sum(map(len, envelopes)) + len(dictionary)
        assert shipped < len(plain) + len(optimized)

    def test_delta_round_trip(self):
        plain = _encode(SMALL_SOURCE)
        optimized = _encode(SMALL_SOURCE, optimize=True)
        store = DictionaryStore()
        delta = encode_delta(plain, optimized, store=store)
        assert resolve_stream(delta, store) == optimized
        verify_module(decode_module(delta, store=store))

    def test_delta_of_identical_streams_is_tiny(self):
        wire = _encode(SMALL_SOURCE)
        store = DictionaryStore()
        delta = encode_delta(wire, wire, store=store)
        assert resolve_stream(delta, store) == wire
        # framing + two digests + three varints, no literal
        assert len(delta) <= len(MAGIC_V2) + 1 + 32 + 32 + 15

    def test_corpus_envelopes_resolve_bit_identically(self, corpus_wires):
        store = DictionaryStore()
        for (name, optimize), wire in corpus_wires.items():
            envelope = encode_v2(wire, store=store)
            assert resolve_stream(envelope, store) == wire, \
                f"{name} optimize={optimize}"


# ======================================================================
# reject-or-equivalent for envelopes: targeted probes


class TestEnvelopeRejection:
    def _code(self, unit: bytes, store=None) -> str:
        with pytest.raises(DecodeError) as info:
            decode_module(unit, store=store or DictionaryStore())
        assert info.value.code in STABLE_CODES
        return info.value.code

    def test_missing_dictionary(self):
        wire = _encode(SMALL_SOURCE)
        envelope = encode_v2(wire, (wire[:20],), store=DictionaryStore())
        # fresh (empty) store on the consumer side: digest unknown
        assert self._code(envelope) == "DEC-DICT"

    def test_missing_delta_base(self):
        plain = _encode(SMALL_SOURCE)
        optimized = _encode(SMALL_SOURCE, optimize=True)
        delta = encode_delta(plain, optimized, store=DictionaryStore())
        assert self._code(delta) == "DEC-DELTA-BASE"

    def test_tampered_delta_literal(self):
        plain = _encode(SMALL_SOURCE)
        optimized = _encode(SMALL_SOURCE, optimize=True)
        store = DictionaryStore()
        delta = bytearray(encode_delta(plain, optimized, store=store))
        delta[-40] ^= 0x01  # inside the literal, before the digest
        assert self._code(bytes(delta), store) == "DEC-DELTA-BASE"

    def test_unknown_mode_byte(self):
        unit = MAGIC_V2 + bytes([0x7F])
        assert self._code(unit) == "DEC-MALFORMED"

    def test_truncated_envelope(self):
        wire = _encode(SMALL_SOURCE)
        store = DictionaryStore()
        envelope = encode_v2(wire, (wire[:20],), store=store)
        # cut inside the digest list: the envelope itself is incomplete
        assert self._code(envelope[:len(MAGIC_V2) + 1 + 1 + 16],
                          store) == "DEC-STREAM"

    def test_trailing_bytes_after_delta(self):
        plain = _encode(SMALL_SOURCE)
        optimized = _encode(SMALL_SOURCE, optimize=True)
        store = DictionaryStore()
        delta = encode_delta(plain, optimized, store=store)
        assert self._code(delta + b"\x00", store) == "DEC-TRAILING"

    def test_too_many_dictionaries(self):
        unit = MAGIC_V2 + bytes([MODE_FULL]) \
            + _varint(MAX_DICTIONARIES + 1)
        assert self._code(unit) == "DEC-LIMIT"

    def test_oversized_varint(self):
        unit = MAGIC_V2 + bytes([MODE_FULL]) + b"\xff\xff\xff\xff\xff"
        assert self._code(unit) == "DEC-LIMIT"

    def test_delta_copy_bounds(self):
        base = _encode(SMALL_SOURCE)
        store = DictionaryStore()
        digest = store.put(base)
        unit = (MAGIC_V2 + bytes([MODE_DELTA]) + digest
                + _varint(len(base) + 1) + _varint(0) + _varint(0)
                + blob_digest(base))
        assert self._code(unit, store) == "DEC-DELTA"

    def test_damaged_store_blob_is_absent_not_wrong(self, tmp_path):
        """Content addressing: a corrupted on-disk blob resolves as
        *missing* (DEC-DICT), never as wrong payload bytes."""
        wire = _encode(SMALL_SOURCE)
        store = DictionaryStore(str(tmp_path))
        envelope = encode_v2(wire, (wire[:20],), store=store)
        blob_path = next(tmp_path.glob("*.blob"))
        blob_path.write_bytes(b"\x00" * 20)
        fresh = DictionaryStore(str(tmp_path))
        with pytest.raises(DecodeError) as info:
            decode_module(envelope, store=fresh)
        assert info.value.code == "DEC-DICT"


# ======================================================================
# streaming decode


class TestStreaming:
    def test_every_corpus_artifact_streams_identically(self, corpus_wires):
        """Chunked feeds (a size coprime to every natural boundary)
        over all 20 corpus artifacts reproduce the one-shot module bit
        for bit."""
        for (name, optimize), wire in corpus_wires.items():
            chunks = [wire[i:i + 97] for i in range(0, len(wire), 97)]
            module = stream_module(chunks, cache=False)
            assert encode_module(module) == wire, \
                f"{name} optimize={optimize}"

    def test_chunk_boundary_sweep_small_artifact(self):
        """Every chunk size from 1 byte up on one artifact: the split
        points can never change the result."""
        wire = _encode(SMALL_SOURCE)
        for size in list(range(1, 24)) + [64, len(wire), len(wire) + 7]:
            chunks = [wire[i:i + size] for i in range(0, len(wire), size)]
            module = stream_module(chunks, cache=False)
            assert encode_module(module) == wire, f"chunk size {size}"

    def test_truncation_at_every_byte_rejects(self):
        wire = _encode(SMALL_SOURCE)
        for cut in range(len(wire)):
            loader = StreamingLoader(cache=False)
            loader.feed(wire[:cut])
            with pytest.raises(DecodeError) as info:
                loader.finish()
            assert info.value.code in STABLE_CODES, f"cut at {cut}"

    def test_main_executes_mid_stream(self):
        wire = _encode(RUN_SOURCE, optimize=True)
        loader = StreamingLoader(cache=False)
        ran_mid_stream = False
        for index in range(len(wire)):
            module = loader.feed(wire[index:index + 1])
            if module is None or ran_mid_stream:
                continue
            main = next((m for m in module.functions
                         if m.name == "main" and m.is_static), None)
            if main is None or not module.functions.ready(main):
                continue
            if module.functions.pending:
                # later bodies still in flight -- execute now
                assert _observed(module) == ("42\n", None)
                ran_mid_stream = True
        assert ran_mid_stream, "main only became ready at end of stream"
        final = loader.finish()
        assert loader.complete
        assert encode_module(final) == wire

    def test_pending_body_raises_stream_code(self):
        wire = _encode(RUN_SOURCE)
        loader = StreamingLoader(cache=False)
        module = None
        for index in range(0, len(wire), 16):
            module = loader.feed(wire[index:index + 16])
            if module is not None and module.functions.pending:
                break
        assert module is not None and module.functions.pending
        pending = [m for m in module.functions
                   if not module.functions.ready(m)]
        with pytest.raises(DecodeError) as info:
            module.functions[pending[-1]]
        assert info.value.code == "DEC-STREAM"

    def test_feed_after_finish_rejects(self):
        wire = _encode(SMALL_SOURCE)
        loader = StreamingLoader(cache=False)
        loader.feed(wire)
        loader.finish()
        with pytest.raises(DecodeError) as info:
            loader.feed(b"\x00")
        assert info.value.code == "DEC-TRAILING"

    def test_rejection_poisons_the_stream(self):
        """Bad magic is deterministic: it rejects on the very feed that
        exposes it, and every later call re-raises that same error."""
        wire = _encode(SMALL_SOURCE)
        loader = StreamingLoader(cache=False)
        with pytest.raises(DecodeError) as first:
            loader.feed(bytes([wire[0] ^ 0xFF]) + wire[1:])
        assert first.value.code == "DEC-MAGIC"
        with pytest.raises(DecodeError) as second:
            loader.feed(b"")
        assert second.value is first.value
        with pytest.raises(DecodeError) as third:
            loader.finish()
        assert third.value is first.value

    def test_streaming_publishes_boundary_index(self, tmp_path):
        from repro.loader import ModuleLoader
        wire = _encode(SMALL_SOURCE)
        cache = VerifiedModuleCache(str(tmp_path))
        stream_module([wire[i:i + 13] for i in range(0, len(wire), 13)],
                      cache=cache)
        warm = ModuleLoader(wire, cache=cache)
        warm.load()
        assert warm.cache_hit

    def test_v2_envelope_streams(self):
        wire = _encode(RUN_SOURCE)
        store = DictionaryStore()
        envelope = encode_v2(wire, (wire[:60],), store=store)
        chunks = [envelope[i:i + 7] for i in range(0, len(envelope), 7)]
        module = stream_module(chunks, cache=False, store=store)
        assert encode_module(module) == wire

    def test_unknown_digest_rejects_mid_stream(self):
        """A deterministic envelope error surfaces on the feed that
        exposes it -- waiting for more bytes cannot fix a digest the
        store does not have."""
        wire = _encode(SMALL_SOURCE)
        envelope = encode_v2(wire, (wire[:20],), store=DictionaryStore())
        loader = StreamingLoader(cache=False)  # empty default store
        prefix = len(MAGIC_V2) + 1 + 1 + 32  # through the digest
        with pytest.raises(DecodeError) as info:
            loader.feed(envelope[:prefix])
        assert info.value.code == "DEC-DICT"

    def test_delta_streams_all_or_nothing(self):
        plain = _encode(SMALL_SOURCE)
        optimized = _encode(SMALL_SOURCE, optimize=True)
        store = DictionaryStore()
        delta = encode_delta(plain, optimized, store=store)
        loader = StreamingLoader(cache=False, store=store)
        assert loader.feed(delta[:-1]) is None  # patch incomplete
        module = loader.feed(delta[-1:])
        assert module is not None
        assert encode_module(loader.finish()) == optimized


# ======================================================================
# cache keying across format versions


class TestCacheKeys:
    def test_wire_format_version_sniff(self):
        wire = _encode(SMALL_SOURCE)
        envelope = encode_v2(wire, store=DictionaryStore())
        assert wire_format_version(wire) == "stsa1"
        assert wire_format_version(envelope) == "stsa2"
        assert wire_format_version(b"junk") == "unknown"

    def test_verified_cache_keys_separate_versions(self):
        wire = _encode(SMALL_SOURCE)
        envelope = encode_v2(wire, store=DictionaryStore())
        assert VerifiedModuleCache.key(wire) != \
            VerifiedModuleCache.key(envelope)

    def test_loader_keys_on_resolved_payload(self, tmp_path):
        """v1-direct and v2-enveloped delivery of the same module share
        one verified entry: the boundary index describes the *payload*
        bits, however the bytes arrived."""
        from repro.loader import ModuleLoader
        wire = _encode(SMALL_SOURCE)
        store = DictionaryStore()
        envelope = encode_v2(wire, store=store)
        cache = VerifiedModuleCache(str(tmp_path))
        load_module(envelope, cache=cache, store=store)  # cold, publishes
        warm = ModuleLoader(wire, cache=cache)
        warm.load()
        assert warm.cache_hit

    def test_compilation_cache_keys_on_format_version(self):
        key = CompilationCache.key
        assert key(SMALL_SOURCE) == key(SMALL_SOURCE,
                                        format_version="stsa1")
        assert key(SMALL_SOURCE) != key(SMALL_SOURCE,
                                        format_version="stsa2")
        assert key(SMALL_SOURCE, format_version="stsa2") == \
            key(SMALL_SOURCE, format_version="stsa2")


# ======================================================================
# the seeded v2 mutation campaign gate


@pytest.mark.slow
class TestV2MutationCampaign:
    def test_reject_or_equivalent_holds(self):
        result = run_campaign(seed=20010620, budget=300,
                              mode="streams-v2", minimize=False)
        assert result.ok, [str(f) for f in result.findings]
        assert result.mutations == 300
        assert result.rejected > 0
        assert result.accepted > 0  # some mutants survive -- and passed
        for code in result.taxonomy:
            # rejections carry registered codes; accepted mutants are
            # classified by run class ("ran", "bounded", ...)
            if code.startswith(("DEC-", "STSA-")):
                assert code in STABLE_CODES, code
