"""Recursive-descent parser for MiniJava++."""

from __future__ import annotations

from typing import Optional

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, tokenize

_PRIM_TYPE_NAMES = ("int", "long", "float", "double", "boolean", "char")

#: binary operator precedence, higher binds tighter
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=", ">>>=")


class Parser:
    """Parses a token stream into an AST :class:`~repro.frontend.ast.CompilationUnit`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None,
               offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind == kind and (text is None or token.text == text)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            want = text or kind
            raise CompileError(
                f"expected {want!r} but found {token.text or token.kind!r}",
                token.pos)
        return self._advance()

    def _expect_op(self, text: str) -> Token:
        return self._expect("op", text)

    def _expect_kw(self, text: str) -> Token:
        return self._expect("keyword", text)

    # ------------------------------------------------------------------
    # declarations

    def parse_compilation_unit(self) -> ast.CompilationUnit:
        package = None
        if self._match("keyword", "package"):
            package = self._qualified_name()
            self._expect_op(";")
        while self._match("keyword", "import"):
            self._qualified_name()  # imports are accepted and ignored
            self._expect_op(";")
        classes = []
        while not self._check("eof"):
            classes.append(self.parse_class())
        return ast.CompilationUnit(classes, package)

    def _qualified_name(self) -> str:
        parts = [self._expect("ident").text]
        while self._check("op", "."):
            if self._peek(1).kind == "ident":
                self._advance()
                parts.append(self._expect("ident").text)
            elif self._check("op", "*", 1):
                self._advance()
                self._advance()
                parts.append("*")
                break
            else:
                break
        return ".".join(parts)

    def _modifiers(self) -> set[str]:
        mods: set[str] = set()
        while self._peek().kind == "keyword" and self._peek().text in (
                "public", "private", "protected", "static", "final",
                "abstract"):
            mods.add(self._advance().text)
        return mods

    def parse_class(self) -> ast.ClassDecl:
        mods = self._modifiers()
        pos = self._expect_kw("class").pos
        name = self._expect("ident").text
        super_name = None
        if self._match("keyword", "extends"):
            super_name = self._expect("ident").text
        self._expect_op("{")
        members: list[ast.Node] = []
        while not self._check("op", "}"):
            members.append(self._parse_member(name))
        self._expect_op("}")
        return ast.ClassDecl(name, super_name, members,
                             is_abstract="abstract" in mods, pos=pos)

    def _parse_member(self, class_name: str) -> ast.Node:
        mods = self._modifiers()
        pos = self._peek().pos
        # constructor: ClassName (
        if (self._check("ident", class_name) and self._check("op", "(", 1)):
            name = self._advance().text
            params = self._parse_params()
            throws = self._parse_throws()
            body = self.parse_block()
            return ast.MethodDecl("<init>", params, None, body,
                                  is_static=False, is_abstract=False,
                                  is_constructor=True, throws=throws, pos=pos)
        if self._check("keyword", "void"):
            self._advance()
            return_ref: Optional[ast.TypeRef] = None
            return self._finish_method(return_ref, mods, pos)
        type_ref = self._parse_type_ref()
        name_token = self._expect("ident")
        if self._check("op", "("):
            self.index -= 1  # push the name back for _finish_method
            return self._finish_method(type_ref, mods, pos)
        # field declaration(s); only a single declarator per field for clarity
        init = None
        if self._match("op", "="):
            init = self.parse_expression()
        decl = ast.FieldDecl(type_ref, name_token.text, init,
                             is_static="static" in mods,
                             is_final="final" in mods, pos=pos)
        self._expect_op(";")
        return decl

    def _finish_method(self, return_ref: Optional[ast.TypeRef],
                       mods: set[str], pos) -> ast.MethodDecl:
        name = self._expect("ident").text
        params = self._parse_params()
        throws = self._parse_throws()
        if "abstract" in mods:
            self._expect_op(";")
            body = None
        else:
            body = self.parse_block()
        return ast.MethodDecl(name, params, return_ref, body,
                              is_static="static" in mods,
                              is_abstract="abstract" in mods,
                              is_constructor=False, throws=throws, pos=pos)

    def _parse_params(self) -> list[ast.Param]:
        self._expect_op("(")
        params: list[ast.Param] = []
        if not self._check("op", ")"):
            while True:
                pos = self._peek().pos
                type_ref = self._parse_type_ref()
                name = self._expect("ident").text
                # trailing [] after the name (C-style arrays)
                while self._match("op", "["):
                    self._expect_op("]")
                    type_ref = ast.ArrayTypeRef(type_ref, pos)
                params.append(ast.Param(type_ref, name, pos))
                if not self._match("op", ","):
                    break
        self._expect_op(")")
        return params

    def _parse_throws(self) -> list[str]:
        throws: list[str] = []
        if self._match("keyword", "throws"):
            while True:
                throws.append(self._expect("ident").text)
                if not self._match("op", ","):
                    break
        return throws

    def _parse_type_ref(self) -> ast.TypeRef:
        token = self._peek()
        if token.kind == "keyword" and token.text in _PRIM_TYPE_NAMES:
            self._advance()
            ref: ast.TypeRef = ast.PrimTypeRef(token.text, token.pos)
        elif token.kind == "ident":
            self._advance()
            ref = ast.NamedTypeRef(token.text, token.pos)
        else:
            raise CompileError(f"expected a type, found {token.text!r}",
                               token.pos)
        while self._check("op", "[") and self._check("op", "]", 1):
            self._advance()
            self._advance()
            ref = ast.ArrayTypeRef(ref, token.pos)
        return ref

    # ------------------------------------------------------------------
    # statements

    def parse_block(self) -> ast.Block:
        pos = self._expect_op("{").pos
        stmts: list[ast.Stmt] = []
        while not self._check("op", "}"):
            stmts.append(self.parse_statement())
        self._expect_op("}")
        return ast.Block(stmts, pos)

    def parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == "op":
            if token.text == "{":
                return self.parse_block()
            if token.text == ";":
                self._advance()
                return ast.EmptyStmt(token.pos)
        if token.kind == "keyword":
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "for": self._parse_for,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
                "throw": self._parse_throw,
                "try": self._parse_try,
                "switch": self._parse_switch,
            }.get(token.text)
            if handler is not None:
                return handler()
            if token.text in _PRIM_TYPE_NAMES or token.text == "final":
                return self._parse_local_decl()
        # labeled statement: ident ':'
        if token.kind == "ident" and self._check("op", ":", 1):
            label = self._advance().text
            self._advance()
            return ast.LabeledStmt(label, self.parse_statement(), token.pos)
        if token.kind == "ident" and self._looks_like_decl():
            return self._parse_local_decl()
        expr = self.parse_expression()
        self._expect_op(";")
        return ast.ExprStmt(expr, token.pos)

    def _looks_like_decl(self) -> bool:
        """Heuristic: ``Ident Ident`` or ``Ident[] ...`` starts a declaration."""
        if self._check("op", "[", 1) and self._check("op", "]", 2):
            return True
        return self._peek(1).kind == "ident"

    def _parse_local_decl(self) -> ast.LocalVarDecl:
        pos = self._peek().pos
        self._match("keyword", "final")
        type_ref = self._parse_type_ref()
        declarators: list[tuple[str, Optional[ast.Expr]]] = []
        while True:
            name = self._expect("ident").text
            if self._check("op", "["):
                raise CompileError(
                    "C-style array declarators are not supported for locals; "
                    "write the [] on the type", self._peek().pos)
            init = None
            if self._match("op", "="):
                init = self.parse_expression()
            declarators.append((name, init))
            if not self._match("op", ","):
                break
        self._expect_op(";")
        return ast.LocalVarDecl(type_ref, declarators, pos)

    def _parse_if(self) -> ast.Stmt:
        pos = self._expect_kw("if").pos
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self._match("keyword", "else"):
            else_stmt = self.parse_statement()
        return ast.IfStmt(cond, then_stmt, else_stmt, pos)

    def _parse_while(self) -> ast.Stmt:
        pos = self._expect_kw("while").pos
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        body = self.parse_statement()
        return ast.WhileStmt(cond, body, pos)

    def _parse_do_while(self) -> ast.Stmt:
        pos = self._expect_kw("do").pos
        body = self.parse_statement()
        self._expect_kw("while")
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        self._expect_op(";")
        return ast.DoWhileStmt(body, cond, pos)

    def _parse_for(self) -> ast.Stmt:
        pos = self._expect_kw("for").pos
        self._expect_op("(")
        init: list[ast.Stmt] = []
        if not self._check("op", ";"):
            token = self._peek()
            starts_decl = (
                (token.kind == "keyword"
                 and (token.text in _PRIM_TYPE_NAMES or token.text == "final"))
                or (token.kind == "ident" and self._looks_like_decl()))
            if starts_decl:
                init.append(self._parse_local_decl())
            else:
                init.append(ast.ExprStmt(self.parse_expression(), token.pos))
                while self._match("op", ","):
                    init.append(ast.ExprStmt(self.parse_expression(), token.pos))
                self._expect_op(";")
        else:
            self._advance()
        cond = None
        if not self._check("op", ";"):
            cond = self.parse_expression()
        self._expect_op(";")
        update: list[ast.Expr] = []
        if not self._check("op", ")"):
            update.append(self.parse_expression())
            while self._match("op", ","):
                update.append(self.parse_expression())
        self._expect_op(")")
        body = self.parse_statement()
        return ast.ForStmt(init, cond, update, body, pos)

    def _parse_return(self) -> ast.Stmt:
        pos = self._expect_kw("return").pos
        expr = None
        if not self._check("op", ";"):
            expr = self.parse_expression()
        self._expect_op(";")
        return ast.ReturnStmt(expr, pos)

    def _parse_break(self) -> ast.Stmt:
        pos = self._expect_kw("break").pos
        label = None
        if self._check("ident"):
            label = self._advance().text
        self._expect_op(";")
        return ast.BreakStmt(label, pos)

    def _parse_continue(self) -> ast.Stmt:
        pos = self._expect_kw("continue").pos
        label = None
        if self._check("ident"):
            label = self._advance().text
        self._expect_op(";")
        return ast.ContinueStmt(label, pos)

    def _parse_throw(self) -> ast.Stmt:
        pos = self._expect_kw("throw").pos
        expr = self.parse_expression()
        self._expect_op(";")
        return ast.ThrowStmt(expr, pos)

    def _parse_try(self) -> ast.Stmt:
        pos = self._expect_kw("try").pos
        body = self.parse_block()
        catches: list[ast.CatchClause] = []
        while self._check("keyword", "catch"):
            catch_pos = self._advance().pos
            self._expect_op("(")
            type_ref = self._parse_type_ref()
            name = self._expect("ident").text
            self._expect_op(")")
            catches.append(
                ast.CatchClause(type_ref, name, self.parse_block(), catch_pos))
        finally_block = None
        if self._match("keyword", "finally"):
            finally_block = self.parse_block()
        if not catches and finally_block is None:
            raise CompileError("try without catch or finally", pos)
        return ast.TryStmt(body, catches, finally_block, pos)

    def _parse_switch(self) -> ast.Stmt:
        pos = self._expect_kw("switch").pos
        self._expect_op("(")
        selector = self.parse_expression()
        self._expect_op(")")
        self._expect_op("{")
        cases: list[ast.SwitchCase] = []
        while not self._check("op", "}"):
            case_pos = self._peek().pos
            labels: list[ast.Expr] = []
            is_default = False
            while True:
                if self._match("keyword", "case"):
                    labels.append(self.parse_expression())
                    self._expect_op(":")
                elif self._match("keyword", "default"):
                    is_default = True
                    self._expect_op(":")
                else:
                    break
            if not labels and not is_default:
                raise CompileError("expected 'case' or 'default'",
                                   self._peek().pos)
            stmts: list[ast.Stmt] = []
            while not (self._check("op", "}")
                       or self._check("keyword", "case")
                       or self._check("keyword", "default")):
                stmts.append(self.parse_statement())
            cases.append(ast.SwitchCase(labels, is_default, stmts, case_pos))
        self._expect_op("}")
        return ast.SwitchStmt(selector, cases, pos)

    # ------------------------------------------------------------------
    # expressions

    def parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        token = self._peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(left, token.text, value, token.pos)
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._check("op", "?"):
            pos = self._advance().pos
            then_expr = self.parse_expression()
            self._expect_op(":")
            else_expr = self._parse_assignment()
            return ast.Ternary(cond, then_expr, else_expr, pos)
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            op = token.text if token.kind in ("op", "keyword") else None
            precedence = _BINARY_PRECEDENCE.get(op or "")
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            if op == "instanceof":
                type_ref = self._parse_type_ref()
                left = ast.InstanceOf(left, type_ref, token.pos)
                continue
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(op, left, right, token.pos)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "+", "!", "~"):
            self._advance()
            # fold -2147483648 / -9223372036854775808L at parse time
            if token.text == "-" and self._peek().kind in ("int", "long"):
                literal = self._advance()
                return ast.Literal(literal.kind, -literal.value, token.pos)
            operand = self._parse_unary()
            return ast.Unary(token.text, operand, token.pos)
        if token.kind == "op" and token.text in ("++", "--"):
            self._advance()
            target = self._parse_unary()
            return ast.IncDec(token.text, target, True, token.pos)
        if token.kind == "op" and token.text == "(" and self._is_cast():
            self._advance()
            type_ref = self._parse_type_ref()
            self._expect_op(")")
            operand = self._parse_unary()
            return ast.Cast(type_ref, operand, token.pos)
        return self._parse_postfix()

    def _is_cast(self) -> bool:
        """Disambiguate ``(T) expr`` casts from parenthesised expressions."""
        first = self._peek(1)
        if first.kind == "keyword" and first.text in _PRIM_TYPE_NAMES:
            return True
        if first.kind != "ident":
            return False
        offset = 2
        while (self._check("op", "[", offset)
               and self._check("op", "]", offset + 1)):
            offset += 2
        if not self._check("op", ")", offset):
            return False
        if offset > 2:
            return True  # (T[]) is always a cast
        after = self._peek(offset + 1)
        # `(Name) X` is a cast when X can start a unary-not-plus-minus expr
        if after.kind in ("ident", "int", "long", "float", "double", "char",
                          "string"):
            return True
        if after.kind == "keyword" and after.text in (
                "this", "new", "true", "false", "null", "super"):
            return True
        if after.kind == "op" and after.text in ("(", "!", "~"):
            return True
        return False

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text == ".":
                self._advance()
                name = self._expect("ident").text
                if self._check("op", "("):
                    args = self._parse_args()
                    expr = ast.Call(expr, name, args, pos=token.pos)
                else:
                    expr = ast.FieldAccess(expr, name, token.pos)
            elif token.kind == "op" and token.text == "[":
                self._advance()
                index = self.parse_expression()
                self._expect_op("]")
                expr = ast.ArrayAccess(expr, index, token.pos)
            elif token.kind == "op" and token.text in ("++", "--"):
                self._advance()
                expr = ast.IncDec(token.text, expr, False, token.pos)
            else:
                return expr

    def _parse_args(self) -> list[ast.Expr]:
        self._expect_op("(")
        args: list[ast.Expr] = []
        if not self._check("op", ")"):
            while True:
                args.append(self.parse_expression())
                if not self._match("op", ","):
                    break
        self._expect_op(")")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in ("int", "long", "float", "double", "char", "string"):
            self._advance()
            return ast.Literal(token.kind, token.value, token.pos)
        if token.kind == "keyword":
            if token.text in ("true", "false"):
                self._advance()
                return ast.Literal("boolean", token.text == "true", token.pos)
            if token.text == "null":
                self._advance()
                return ast.Literal("null", None, token.pos)
            if token.text == "this":
                self._advance()
                if self._check("op", "("):
                    args = self._parse_args()
                    return ast.CtorCall(False, args, token.pos)
                return ast.This(token.pos)
            if token.text == "super":
                self._advance()
                if self._check("op", "("):
                    args = self._parse_args()
                    return ast.CtorCall(True, args, token.pos)
                self._expect_op(".")
                name = self._expect("ident").text
                args = self._parse_args()
                return ast.Call(None, name, args, is_super=True,
                                pos=token.pos)
            if token.text == "new":
                return self._parse_new()
        if token.kind == "op" and token.text == "(":
            self._advance()
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        if token.kind == "ident":
            self._advance()
            if self._check("op", "("):
                args = self._parse_args()
                return ast.Call(None, token.text, args, pos=token.pos)
            return ast.Name(token.text, token.pos)
        raise CompileError(f"unexpected token {token.text or token.kind!r}",
                           token.pos)

    def _parse_new(self) -> ast.Expr:
        pos = self._expect_kw("new").pos
        token = self._peek()
        if token.kind == "keyword" and token.text in _PRIM_TYPE_NAMES:
            self._advance()
            elem_ref: ast.TypeRef = ast.PrimTypeRef(token.text, token.pos)
            return self._parse_new_array(elem_ref, pos)
        name = self._expect("ident").text
        if self._check("op", "("):
            args = self._parse_args()
            return ast.New(ast.NamedTypeRef(name, pos), args, pos)
        return self._parse_new_array(ast.NamedTypeRef(name, pos), pos)

    def _parse_new_array(self, elem_ref: ast.TypeRef, pos) -> ast.Expr:
        dims: list[ast.Expr] = []
        self._expect_op("[")
        dims.append(self.parse_expression())
        self._expect_op("]")
        extra_dims = 0
        while self._check("op", "["):
            if self._check("op", "]", 1):
                self._advance()
                self._advance()
                extra_dims += 1
            elif extra_dims == 0:
                self._advance()
                dims.append(self.parse_expression())
                self._expect_op("]")
            else:
                raise CompileError("cannot size a dimension after []", pos)
        return ast.NewArray(elem_ref, dims, extra_dims, pos)


def parse_compilation_unit(source: str,
                           filename: str = "<source>") -> ast.CompilationUnit:
    """Parse ``source`` into an AST."""
    return Parser(tokenize(source, filename)).parse_compilation_unit()
