"""Tests for the programmatic builder (repro.tsa.builder)."""

import pytest

from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.interp.interpreter import Interpreter
from repro.tsa.builder import BuildError, ModuleBuilder
from repro.tsa.verifier import verify_module
from repro.typesys.types import ArrayType, BOOLEAN, ClassType, INT


def run(module, cls, method, args):
    function = module.function_named(cls, method)
    return Interpreter(module).run_function(function, args)


class TestBasics:
    def test_arithmetic_function(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with worker.method("add3", [("a", INT), ("b", INT), ("c", INT)],
                           INT) as b:
            b.ret(b.add(b.add(b.arg("a"), b.arg("b")), b.arg("c")))
        module = mb.build()
        assert run(module, "Worker", "add3", [1, 2, 3]).value == 6

    def test_loop_with_locals(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with worker.method("triangle", [("n", INT)], INT) as b:
            total = b.local(INT, "total", b.const(0))
            i = b.local(INT, "i", b.const(0))
            with b.while_(b.le(b.get(i), b.arg("n"))):
                b.set(total, b.add(b.get(total), b.get(i)))
                b.set(i, b.add(b.get(i), b.const(1)))
            b.ret(b.get(total))
        module = mb.build(optimize=True)
        assert run(module, "Worker", "triangle", [10]).value == 55

    def test_if_else(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with worker.method("max2", [("a", INT), ("b", INT)], INT) as b:
            result = b.local(INT, "result", b.const(0))
            if_ctx = b.if_(b.gt(b.arg("a"), b.arg("b")))
            with if_ctx:
                b.set(result, b.arg("a"))
            with if_ctx.else_():
                b.set(result, b.arg("b"))
            b.ret(b.get(result))
        module = mb.build()
        assert run(module, "Worker", "max2", [3, 9]).value == 9
        assert run(module, "Worker", "max2", [9, 3]).value == 9

    def test_break_and_continue(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with worker.method("firstMultiple", [("k", INT)], INT) as b:
            i = b.local(INT, "i", b.const(1))
            found = b.local(INT, "found", b.const(-1))
            with b.while_(b.lt(b.get(i), b.const(100))):
                rem = b.local(INT, "rem",
                              b.op("int.rem", b.get(i), b.arg("k")))
                if_ctx = b.if_(b.ne(b.get(rem), b.const(0)))
                with if_ctx:
                    b.set(i, b.add(b.get(i), b.const(1)))
                    b.continue_()
                b.set(found, b.get(i))
                b.break_()
            b.ret(b.get(found))
        module = mb.build()
        assert run(module, "Worker", "firstMultiple", [7]).value == 7


class TestObjects:
    def _counter_module(self):
        mb = ModuleBuilder()
        counter = mb.new_class("Counter")
        counter.field("count", INT)
        with counter.method("bump", [("c", ClassType("Counter"))],
                            INT) as b:
            obj = b.arg("c")
            b.set_field(obj, "count",
                        b.add(b.get_field(obj, "count"), b.const(1)))
            b.ret(b.get_field(obj, "count"))
        with counter.method("fresh", [], ClassType("Counter")) as b:
            b.ret(b.new("Counter"))
        return mb.build()

    def test_fields_and_new(self):
        module = self._counter_module()
        verify_module(module)
        fresh = module.function_named("Counter", "fresh")
        interp = Interpreter(module)
        obj = interp.run_function(fresh, []).value
        bump = module.function_named("Counter", "bump")
        assert Interpreter(module).run_function(bump, [obj]).value == 1

    def test_null_check_inserted_automatically(self):
        module = self._counter_module()
        bump = module.function_named("Counter", "bump")
        result = Interpreter(module).run_function(bump, [None])
        assert result.exception_name() == "java.lang.NullPointerException"

    def test_arrays(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with worker.method("sum", [("xs", ArrayType(INT))], INT) as b:
            total = b.local(INT, "total", b.const(0))
            i = b.local(INT, "i", b.const(0))
            with b.while_(b.lt(b.get(i), b.array_length(b.arg("xs")))):
                b.set(total, b.add(b.get(total),
                                   b.array_get(b.arg("xs"), b.get(i))))
                b.set(i, b.add(b.get(i), b.const(1)))
            b.ret(b.get(total))
        module = mb.build(optimize=True)
        from repro.interp.heap import ArrayRef
        array = ArrayRef(ArrayType(INT), 4)
        array.elements = [1, 2, 3, 4]
        assert run(module, "Worker", "sum", [array]).value == 10

    def test_library_calls(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with worker.method("shout", [], ClassType("java.lang.String")) as b:
            greeting = b.const("hi")
            b.eval(b.call_static("java.lang.System", "currentTimeMillis"))
            b.ret(b.call(greeting, "concat", b.const("!")))
        module = mb.build()
        result = run(module, "Worker", "shout", [])
        assert result.value.value == "hi!"


class TestRoundTripAndErrors:
    def test_built_module_encodes_and_decodes(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with worker.method("square", [("x", INT)], INT) as b:
            b.ret(b.mul(b.arg("x"), b.arg("x")))
        module = mb.build()
        decoded = decode_module(encode_module(module))
        verify_module(decoded)
        assert run(decoded, "Worker", "square", [12]).value == 144

    def test_unknown_parameter_rejected(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with pytest.raises(BuildError, match="no parameter"):
            with worker.method("f", [("x", INT)], INT) as b:
                b.ret(b.arg("y"))

    def test_break_outside_loop_rejected(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        with pytest.raises(BuildError, match="outside"):
            with worker.method("f", [], INT) as b:
                b.break_()

    def test_unfinished_body_rejected(self):
        mb = ModuleBuilder()
        worker = mb.new_class("Worker")
        worker.method("orphan", [], INT)  # never given a body
        with pytest.raises(BuildError, match="never completed"):
            mb.build()

    def test_custom_class_hierarchy(self):
        mb = ModuleBuilder()
        base = mb.new_class("Base")
        with base.method("tag", [], INT, static=False) as b:
            b.ret(b.const(1))
        derived = mb.new_class("Derived", superclass="Base")
        with derived.method("tag", [], INT, static=False) as b:
            b.ret(b.const(2))
        caller = mb.new_class("Caller")
        with caller.method("callTag", [("o", ClassType("Base"))],
                           INT) as b:
            b.ret(b.call(b.arg("o"), "tag"))
        module = mb.build()
        verify_module(module)
        from repro.interp.heap import ObjectRef
        derived_obj = ObjectRef(module.world.require("Derived"))
        assert run(module, "Caller", "callTag", [derived_obj]).value == 2
