"""Consumer-side fast path: the fused verifying loader.

The two-pass consumer (``decode_module`` then ``verify_module``) walks
every function three times: once to materialize it from the wire, once
to recompute dominators and re-check every reference, and once more for
the rule sweep.  The paper's point is that the first walk already
*proves* almost everything -- the wire format cannot represent an
out-of-range reference or a wrong-plane operand -- so this package
collapses verification into the decode and keeps only the handful of
residual rules as a cheap post-pass (:mod:`repro.loader.fused`).

On top of the fused pass sit two consumer conveniences:

* **lazy loading** (:mod:`repro.loader.lazy`): the header and type
  table decode eagerly, function bodies decode-and-verify on first
  touch;
* a **verified-module cache** (:class:`repro.cache.VerifiedModuleCache`)
  keyed on the wire-bytes digest: repeat loads skip the residual
  verification sweeps and gain random access to individual bodies --
  which also enables ``jobs=N`` parallel body decoding;
* **streaming decode** (:mod:`repro.loader.stream`): a chunk-feedable
  front that verifies each body the moment its bits have arrived, so
  ``main`` can execute while later bodies are still in flight.

The legacy two-pass path is kept as the reference oracle; the
differential gate in ``tests/test_loader.py`` holds the fused path to
verdict-for-verdict agreement with it.
"""

from repro.loader.fused import ModuleLoader, load_module
from repro.loader.stream import StreamingLoader, stream_module

__all__ = ["ModuleLoader", "StreamingLoader", "load_module",
           "stream_module"]
