"""Class registry: user classes plus the implicitly generated host library.

The paper (Section 4) stresses that the parts of the type table describing
primitive types and *types imported from the host environment's libraries*
are always generated implicitly and are thereby tamper-proof.  The
:class:`World` is exactly that implicit part: it is constructed identically
on the producer and the consumer, never transmitted.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    INT,
    LONG,
    NULL,
    NullType,
    PrimitiveType,
    STRING,
    Type,
    VOID,
    widens_to,
)


class FieldInfo:
    """A declared field of a class."""

    def __init__(self, name: str, type: Type, is_static: bool = False,
                 is_final: bool = False, const_value: object = None):
        self.name = name
        self.type = type
        self.is_static = is_static
        self.is_final = is_final
        #: compile-time constant value for ``static final`` library fields
        self.const_value = const_value
        self.declaring: Optional["ClassInfo"] = None
        #: instance-field slot (assigned once the hierarchy is complete)
        self.slot: int = -1

    @property
    def qualified_name(self) -> str:
        owner = self.declaring.name if self.declaring else "?"
        return f"{owner}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<field {self.qualified_name}: {self.type}>"


class MethodInfo:
    """A declared method or constructor (constructors are named ``<init>``)."""

    def __init__(self, name: str, param_types: list[Type], return_type: Type,
                 is_static: bool = False, is_native: bool = False,
                 is_abstract: bool = False):
        self.name = name
        self.param_types = list(param_types)
        self.return_type = return_type
        self.is_static = is_static
        self.is_native = is_native
        self.is_abstract = is_abstract
        self.declaring: Optional["ClassInfo"] = None
        #: vtable slot for virtual methods (assigned with the hierarchy)
        self.vtable_slot: int = -1
        #: front-end AST of the body (user methods only; filled by semantics)
        self.ast_body = None
        #: UAST of the body (filled by the UAST builder)
        self.uast_body = None
        #: names of the declared parameters (user methods)
        self.param_names: list[str] = []
        #: list of thrown exception class names (informational)
        self.throws: list[str] = []

    @property
    def is_constructor(self) -> bool:
        return self.name == "<init>"

    @property
    def signature(self) -> tuple:
        """Override-identity: name plus exact parameter types."""
        return (self.name, tuple(self.param_types))

    @property
    def qualified_name(self) -> str:
        owner = self.declaring.name if self.declaring else "?"
        params = ",".join(str(t) for t in self.param_types)
        return f"{owner}.{self.name}({params})"

    def descriptor(self) -> str:
        params = "".join(t.descriptor() for t in self.param_types)
        return f"({params}){self.return_type.descriptor()}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<method {self.qualified_name}>"


class ClassInfo:
    """Everything known about a class: hierarchy, members, vtable."""

    def __init__(self, name: str, super_name: Optional[str] = None,
                 is_builtin: bool = False, is_abstract: bool = False):
        self.name = name
        self.super_name = super_name
        self.superclass: Optional["ClassInfo"] = None
        self.is_builtin = is_builtin
        self.is_abstract = is_abstract
        self.fields: list[FieldInfo] = []
        self.methods: list[MethodInfo] = []
        #: flattened vtable: list of MethodInfo, index = vtable slot
        self.vtable: list[MethodInfo] = []
        #: all instance fields including inherited, index = slot
        self.all_instance_fields: list[FieldInfo] = []
        self._linked = False

    @property
    def type(self) -> ClassType:
        return ClassType(self.name)

    def add_field(self, field: FieldInfo) -> FieldInfo:
        field.declaring = self
        self.fields.append(field)
        return field

    def add_method(self, method: MethodInfo) -> MethodInfo:
        method.declaring = self
        self.methods.append(method)
        return method

    def find_field(self, name: str) -> Optional[FieldInfo]:
        """Look up a field by name, walking up the hierarchy."""
        cls: Optional[ClassInfo] = self
        while cls is not None:
            for field in cls.fields:
                if field.name == name:
                    return field
            cls = cls.superclass
        return None

    def methods_named(self, name: str) -> list[MethodInfo]:
        """All methods with the given name visible on this class.

        Methods overridden in a subclass shadow the superclass declaration
        (same signature); overloads accumulate.
        """
        found: list[MethodInfo] = []
        seen_signatures: set[tuple] = set()
        cls: Optional[ClassInfo] = self
        while cls is not None:
            for method in cls.methods:
                if method.name == name and method.signature not in seen_signatures:
                    found.append(method)
                    seen_signatures.add(method.signature)
            cls = cls.superclass
        return found

    def is_subclass_of(self, other: "ClassInfo") -> bool:
        cls: Optional[ClassInfo] = self
        while cls is not None:
            if cls is other or cls.name == other.name:
                return True
            cls = cls.superclass
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<class {self.name}>"


class WorldError(Exception):
    """Raised for inconsistent class hierarchies or unresolvable names."""


class World:
    """Registry of all classes known to a compilation: builtins + user code."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self._short_names: dict[str, str] = {}
        _install_builtins(self)
        self.link()

    # ------------------------------------------------------------------
    # registration and lookup

    def define_class(self, info: ClassInfo) -> ClassInfo:
        if info.name in self.classes:
            raise WorldError(f"duplicate class {info.name}")
        self.classes[info.name] = info
        short = info.name.rsplit(".", 1)[-1]
        # Short names resolve to the qualified name; user classes may shadow
        # nothing (library classes keep priority only if not redefined).
        self._short_names.setdefault(short, info.name)
        if short not in self.classes:
            self._short_names[short] = info.name
        return info

    def lookup(self, name: str) -> Optional[ClassInfo]:
        """Resolve a (possibly short) class name."""
        if name in self.classes:
            return self.classes[name]
        qualified = self._short_names.get(name)
        if qualified is not None:
            return self.classes.get(qualified)
        return None

    def require(self, name: str) -> ClassInfo:
        info = self.lookup(name)
        if info is None:
            raise WorldError(f"unknown class {name}")
        return info

    def class_of(self, type: ClassType) -> ClassInfo:
        return self.require(type.name)

    # ------------------------------------------------------------------
    # linking: superclass resolution, field slots, vtables

    def link(self) -> None:
        """Resolve superclasses and assign field slots and vtable slots."""
        for info in self.classes.values():
            if info.super_name is not None and info.superclass is None:
                info.superclass = self.require(info.super_name)
        for info in self.classes.values():
            self._link_class(info)

    def _link_class(self, info: ClassInfo) -> None:
        if info._linked:
            return
        if info.superclass is not None:
            self._link_class(info.superclass)
            info.all_instance_fields = list(info.superclass.all_instance_fields)
            info.vtable = list(info.superclass.vtable)
        else:
            info.all_instance_fields = []
            info.vtable = []
        for field in info.fields:
            if not field.is_static:
                field.slot = len(info.all_instance_fields)
                info.all_instance_fields.append(field)
        for method in info.methods:
            if method.is_static or method.is_constructor:
                continue
            slot = None
            for i, inherited in enumerate(info.vtable):
                if inherited.signature == method.signature:
                    slot = i
                    break
            if slot is None:
                slot = len(info.vtable)
                info.vtable.append(method)
            else:
                info.vtable[slot] = method
            method.vtable_slot = slot
        info._linked = True

    # ------------------------------------------------------------------
    # subtyping

    def is_subtype(self, sub: Type, sup: Type) -> bool:
        """Reference/identity subtyping (arrays are subtypes of Object)."""
        if sub == sup:
            return True
        if isinstance(sub, NullType):
            return sup.is_reference()
        if isinstance(sub, ArrayType):
            if isinstance(sup, ClassType):
                return sup.name == "java.lang.Object"
            if isinstance(sup, ArrayType):
                # Java array covariance for reference element types.
                return (sub.element.is_reference()
                        and sup.element.is_reference()
                        and self.is_subtype(sub.element, sup.element))
            return False
        if isinstance(sub, ClassType) and isinstance(sup, ClassType):
            return self.require(sub.name).is_subclass_of(self.require(sup.name))
        return False

    def assignable(self, src: Type, dst: Type) -> bool:
        """Assignment compatibility: subtyping or primitive widening."""
        if isinstance(src, PrimitiveType) and isinstance(dst, PrimitiveType):
            return widens_to(src, dst)
        return self.is_subtype(src, dst)

    def common_supertype(self, a: Type, b: Type) -> Type:
        """Least-ish common supertype used for ternary/phi typing."""
        if a == b:
            return a
        if isinstance(a, NullType):
            return b
        if isinstance(b, NullType):
            return a
        if self.is_subtype(a, b):
            return b
        if self.is_subtype(b, a):
            return a
        if isinstance(a, ClassType) and isinstance(b, ClassType):
            cls: Optional[ClassInfo] = self.require(a.name)
            while cls is not None:
                if self.is_subtype(b, cls.type):
                    return cls.type
                cls = cls.superclass
        if a.is_reference() and b.is_reference():
            return ClassType("java.lang.Object")
        raise WorldError(f"no common supertype of {a} and {b}")

    def user_classes(self) -> list[ClassInfo]:
        return [c for c in self.classes.values() if not c.is_builtin]


# ----------------------------------------------------------------------
# Built-in ("imported") host library

def _m(name: str, params: Iterable[Type], ret: Type, *, static: bool = False) -> MethodInfo:
    return MethodInfo(name, list(params), ret, is_static=static, is_native=True)


def _install_builtins(world: World) -> None:
    obj = ClassInfo("java.lang.Object", None, is_builtin=True)
    obj.add_method(_m("<init>", [], VOID))
    obj.add_method(_m("toString", [], STRING))
    obj.add_method(_m("equals", [ClassType("java.lang.Object")], BOOLEAN))
    obj.add_method(_m("hashCode", [], INT))
    world.define_class(obj)

    string = ClassInfo("java.lang.String", "java.lang.Object", is_builtin=True)
    for method in (
        _m("length", [], INT),
        _m("charAt", [INT], CHAR),
        _m("equals", [ClassType("java.lang.Object")], BOOLEAN),
        _m("compareTo", [STRING], INT),
        _m("concat", [STRING], STRING),
        _m("substring", [INT, INT], STRING),
        _m("substring", [INT], STRING),
        _m("indexOf", [STRING], INT),
        _m("startsWith", [STRING], BOOLEAN),
        _m("endsWith", [STRING], BOOLEAN),
        _m("trim", [], STRING),
        _m("toString", [], STRING),
        _m("hashCode", [], INT),
        _m("valueOf", [INT], STRING, static=True),
        _m("valueOf", [LONG], STRING, static=True),
        _m("valueOf", [DOUBLE], STRING, static=True),
        _m("valueOf", [CHAR], STRING, static=True),
        _m("valueOf", [BOOLEAN], STRING, static=True),
        _m("valueOf", [ClassType("java.lang.Object")], STRING, static=True),
    ):
        string.add_method(method)
    world.define_class(string)

    builder = ClassInfo("java.lang.StringBuilder", "java.lang.Object", is_builtin=True)
    builder.add_method(_m("<init>", [], VOID))
    for arg in (STRING, INT, LONG, DOUBLE, CHAR, BOOLEAN,
                ClassType("java.lang.Object")):
        builder.add_method(_m("append", [arg], ClassType("java.lang.StringBuilder")))
    builder.add_method(_m("toString", [], STRING))
    builder.add_method(_m("length", [], INT))
    world.define_class(builder)

    stream = ClassInfo("java.io.PrintStream", "java.lang.Object", is_builtin=True)
    for arg in (STRING, INT, LONG, DOUBLE, CHAR, BOOLEAN,
                ClassType("java.lang.Object")):
        stream.add_method(_m("println", [arg], VOID))
        stream.add_method(_m("print", [arg], VOID))
    stream.add_method(_m("println", [], VOID))
    world.define_class(stream)

    system = ClassInfo("java.lang.System", "java.lang.Object", is_builtin=True)
    system.add_field(FieldInfo("out", ClassType("java.io.PrintStream"),
                               is_static=True, is_final=True))
    system.add_method(_m("currentTimeMillis", [], LONG, static=True))
    world.define_class(system)

    math = ClassInfo("java.lang.Math", "java.lang.Object", is_builtin=True)
    for method in (
        _m("sqrt", [DOUBLE], DOUBLE, static=True),
        _m("pow", [DOUBLE, DOUBLE], DOUBLE, static=True),
        _m("floor", [DOUBLE], DOUBLE, static=True),
        _m("ceil", [DOUBLE], DOUBLE, static=True),
        _m("abs", [INT], INT, static=True),
        _m("abs", [LONG], LONG, static=True),
        _m("abs", [DOUBLE], DOUBLE, static=True),
        _m("min", [INT, INT], INT, static=True),
        _m("min", [LONG, LONG], LONG, static=True),
        _m("min", [DOUBLE, DOUBLE], DOUBLE, static=True),
        _m("max", [INT, INT], INT, static=True),
        _m("max", [LONG, LONG], LONG, static=True),
        _m("max", [DOUBLE, DOUBLE], DOUBLE, static=True),
    ):
        math.add_method(method)
    world.define_class(math)

    integer = ClassInfo("java.lang.Integer", "java.lang.Object", is_builtin=True)
    integer.add_field(FieldInfo("MAX_VALUE", INT, is_static=True, is_final=True,
                                const_value=2**31 - 1))
    integer.add_field(FieldInfo("MIN_VALUE", INT, is_static=True, is_final=True,
                                const_value=-(2**31)))
    integer.add_method(_m("toString", [INT], STRING, static=True))
    integer.add_method(_m("parseInt", [STRING], INT, static=True))
    integer.add_method(_m("bitCount", [INT], INT, static=True))
    integer.add_method(_m("numberOfLeadingZeros", [INT], INT, static=True))
    integer.add_method(_m("numberOfTrailingZeros", [INT], INT, static=True))
    world.define_class(integer)

    long_cls = ClassInfo("java.lang.Long", "java.lang.Object", is_builtin=True)
    long_cls.add_field(FieldInfo("MAX_VALUE", LONG, is_static=True, is_final=True,
                                 const_value=2**63 - 1))
    long_cls.add_field(FieldInfo("MIN_VALUE", LONG, is_static=True, is_final=True,
                                 const_value=-(2**63)))
    long_cls.add_method(_m("toString", [LONG], STRING, static=True))
    world.define_class(long_cls)

    character = ClassInfo("java.lang.Character", "java.lang.Object", is_builtin=True)
    character.add_method(_m("isDigit", [CHAR], BOOLEAN, static=True))
    character.add_method(_m("isLetter", [CHAR], BOOLEAN, static=True))
    character.add_method(_m("isWhitespace", [CHAR], BOOLEAN, static=True))
    character.add_method(_m("isLetterOrDigit", [CHAR], BOOLEAN, static=True))
    world.define_class(character)

    # Exception hierarchy.
    def exception_class(name: str, super_name: str) -> ClassInfo:
        info = ClassInfo(name, super_name, is_builtin=True)
        info.add_method(_m("<init>", [], VOID))
        info.add_method(_m("<init>", [STRING], VOID))
        world.define_class(info)
        return info

    throwable = ClassInfo("java.lang.Throwable", "java.lang.Object", is_builtin=True)
    throwable.add_field(FieldInfo("message", STRING))
    throwable.add_method(_m("<init>", [], VOID))
    throwable.add_method(_m("<init>", [STRING], VOID))
    throwable.add_method(_m("getMessage", [], STRING))
    throwable.add_method(_m("toString", [], STRING))
    world.define_class(throwable)

    exception_class("java.lang.Exception", "java.lang.Throwable")
    exception_class("java.lang.RuntimeException", "java.lang.Exception")
    exception_class("java.lang.Error", "java.lang.Throwable")
    exception_class("java.lang.NullPointerException", "java.lang.RuntimeException")
    exception_class("java.lang.ArithmeticException", "java.lang.RuntimeException")
    exception_class("java.lang.ArrayIndexOutOfBoundsException",
                    "java.lang.RuntimeException")
    exception_class("java.lang.ArrayStoreException",
                    "java.lang.RuntimeException")
    exception_class("java.lang.ClassCastException", "java.lang.RuntimeException")
    exception_class("java.lang.NegativeArraySizeException",
                    "java.lang.RuntimeException")
    exception_class("java.lang.IllegalArgumentException",
                    "java.lang.RuntimeException")
    exception_class("java.lang.IllegalStateException",
                    "java.lang.RuntimeException")
