"""Signed module manifests on a hash-chained publish log.

SafeTSA makes the *bytes* of a module intrinsically safe; this module
makes their *history* auditable.  Every publish appends one entry::

    entry = {
        "seq":       n,                  # dense, from 0
        "prev":      <hex>,              # hash of entry n-1 (GENESIS at 0)
        "manifest":  {digest, format, name, published_at, size, tenant},
        "signature": <hex>,              # HMAC-SHA256 over the manifest
    }
    entry_hash = sha256(b"stsa-log\\x00" + canonical_json(entry))

Hashes are computed over **canonical JSON** (sorted keys, minimal
separators, UTF-8) so any two implementations serialize an entry to the
same bytes.  Because each ``prev`` covers the previous entry *in full*
-- manifest, signature, and its own ``prev`` -- editing any historical
payload or splicing the chain changes every later hash: an auditing
client holding only the current head detects the rewrite, and a client
holding any previously seen ``(seq, hash)`` pair detects a fork at that
point (the "stamped chain" records of the SSMDE lineage; certificate
thinking from abstraction-carrying code, applied to provenance).

Signatures are HMAC-SHA256 under the publisher key -- shared-secret
attestation, deliberately stdlib-only.  The chain is tamper-*evident*
without the key; signatures additionally bind entries to the key
holder.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from pathlib import Path
from typing import Callable, Optional

from repro.serve.errors import ServeError

#: ``prev`` of the first entry: no predecessor, by construction.
GENESIS = "0" * 64

_HASH_CONTEXT = b"stsa-log\x00"
_SIGN_CONTEXT = b"stsa-manifest\x00"

#: the manifest's exact key set -- part of the wire contract
MANIFEST_KEYS = frozenset(
    {"digest", "format", "name", "published_at", "size", "tenant"})


def canonical_json(value) -> bytes:
    """The one byte serialization every hash and signature is over."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")


def entry_hash(entry: dict) -> str:
    """Hash of one log entry (over everything, ``prev`` included)."""
    return hashlib.sha256(
        _HASH_CONTEXT + canonical_json(entry)).hexdigest()


def sign_manifest(key: bytes, manifest: dict) -> str:
    return hmac.new(key, _SIGN_CONTEXT + canonical_json(manifest),
                    hashlib.sha256).hexdigest()


def manifest_signed(key: bytes, manifest: dict, signature: str) -> bool:
    return hmac.compare_digest(sign_manifest(key, manifest), signature)


def audit_chain(entries: list[dict], *, key: Optional[bytes] = None,
                head: Optional[str] = None) -> str:
    """Verify a publish log; returns its head hash.

    Checks, in order per entry: the manifest shape (exact key set), the
    dense ``seq``, the ``prev`` link to the previous entry's recomputed
    hash, and -- when the publisher ``key`` is supplied -- the manifest
    signature.  ``head``, when given, must match the final hash (the
    client's pinned expectation).  Any violation raises
    :class:`ServeError` with ``SERVE-CHAIN`` (``SERVE-SIG`` for a bad
    signature); an empty log audits to :data:`GENESIS`.
    """
    prev = GENESIS
    for index, entry in enumerate(entries):
        if set(entry) != {"seq", "prev", "manifest", "signature"}:
            raise ServeError(f"log entry {index} has a foreign shape",
                             "SERVE-CHAIN", {"seq": index})
        manifest = entry["manifest"]
        if not isinstance(manifest, dict) \
                or set(manifest) != MANIFEST_KEYS:
            raise ServeError(
                f"log entry {index} manifest has a foreign shape",
                "SERVE-CHAIN", {"seq": index})
        if entry["seq"] != index:
            raise ServeError(
                f"log entry {index} carries seq {entry['seq']}",
                "SERVE-CHAIN", {"seq": index})
        if entry["prev"] != prev:
            raise ServeError(
                f"log entry {index} prev does not chain to entry "
                f"{index - 1}", "SERVE-CHAIN",
                {"seq": index, "expected": prev, "found": entry["prev"]})
        if key is not None and not manifest_signed(
                key, manifest, entry["signature"]):
            raise ServeError(
                f"log entry {index} signature does not verify",
                "SERVE-SIG", {"seq": index})
        prev = entry_hash(entry)
    if head is not None and head != prev:
        raise ServeError("log head does not match the pinned head",
                         "SERVE-CHAIN",
                         {"expected": head, "found": prev})
    return prev


class PublishLog:
    """The append-only server-side log.

    In memory always; with ``path`` each entry is also appended to a
    JSON-lines file (one ``fsync``-free append per publish -- the log
    is evidence, the store is truth), and an existing file is replayed
    (and audited) on construction, so a restarted server continues the
    same chain.
    """

    def __init__(self, key: bytes, *,
                 clock: Callable[[], float] = None,
                 path: Optional[str] = None):
        if not key:
            raise ValueError("publish log requires a signing key")
        self._key = key
        self._clock = clock
        self._path = Path(path) if path else None
        self.entries: list[dict] = []
        self.head = GENESIS
        if self._path is not None and self._path.is_file():
            for line in self._path.read_text().splitlines():
                self.entries.append(json.loads(line))
            self.head = audit_chain(self.entries, key=self._key)

    def __len__(self) -> int:
        return len(self.entries)

    def _now(self) -> float:
        if self._clock is None:
            import time
            return time.time()
        return float(self._clock())

    def append(self, *, name: str, tenant: str, digest: str,
               format_version: str, size: int) -> dict:
        """Publish one manifest; returns the appended entry."""
        manifest = {
            "digest": digest,
            "format": format_version,
            "name": name,
            "published_at": round(self._now(), 6),
            "size": size,
            "tenant": tenant,
        }
        entry = {
            "seq": len(self.entries),
            "prev": self.head,
            "manifest": manifest,
            "signature": sign_manifest(self._key, manifest),
        }
        self.entries.append(entry)
        self.head = entry_hash(entry)
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with self._path.open("a") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    def since(self, seq: int = 0) -> list[dict]:
        """Entries from ``seq`` on (the incremental-audit fetch)."""
        return self.entries[max(seq, 0):]

    def audit(self, *, key: Optional[bytes] = None) -> str:
        """Self-audit; returns (and re-checks) the head hash."""
        head = audit_chain(self.entries,
                           key=key if key is not None else self._key)
        if head != self.head:
            raise ServeError("recorded head does not match the chain",
                             "SERVE-CHAIN",
                             {"expected": self.head, "found": head})
        return head
