"""Differential oracle: every pipeline pair we claim agrees, checked.

For one source program the oracle runs the full agreement matrix and
reports the *first* divergence:

==================  ===================================================
pipeline            what it checks
==================  ===================================================
``interp``          reference: plain module, SafeTSA interpreter
``optimized``       producer-side optimisation preserves semantics
``passes:<spec>``   each explicit pass spec (via CompilationSession)
``wire``            encode -> decode -> execute, plus re-encode
                    bit-identity (``encode(decode(w)) == w``)
``wire-v2``         v2 envelope and delta resolve to the identical v1
                    bytes, decode, verify, and execute identically
``jobs``            serial vs parallel per-function optimisation
                    produce bit-identical wire bytes
``jit``             consumer code generation on the decoded module
``trace``           speculative trace tier vs untraced interpreter:
                    same output, trap identity, steps, check counts
``bytecode``        the independent JVM-bytecode baseline
==================  ===================================================

Two pipelines agree when their observable behaviour -- stdout plus the
Java-level exception name -- is identical.  A pipeline that *crashes*
(any Python exception escaping compile/verify/run) is itself a
divergence: the oracle never lets a host-level error masquerade as
disagreement-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: pass specs compared against the plain module by default; each one is
#: a legal ``--passes`` spec (see repro.driver.passes.PASS_REGISTRY).
#: The last lane is the full pipeline with the loop tier (preheader
#: insertion, LICM, check hoisting) enabled.
DEFAULT_PASS_SPECS = (
    "constprop",
    "constprop,cse_fields,dce",
    "constprop,safephi,hoist_checks,cse_fields,licm,dce,cleanup",
)

_MAX_STEPS = 2_000_000


@dataclass(frozen=True)
class Divergence:
    """Two pipelines disagreed (or one crashed)."""

    pipeline: str
    expected: object
    actual: object
    detail: str = ""

    def __str__(self) -> str:
        text = (f"{self.pipeline}: expected {self.expected!r}, "
                f"got {self.actual!r}")
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class OracleResult:
    """Outcome of one program's trip through the agreement matrix."""

    source: str
    outcomes: dict[str, tuple] = field(default_factory=dict)
    divergence: Optional[Divergence] = None
    #: the source failed the front end -- nothing to compare (only
    #: reachable for shrunken candidates, never for generated programs)
    invalid: bool = False

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.invalid

    @property
    def pipelines(self) -> int:
        return len(self.outcomes)


def _observed(result) -> tuple[str, Optional[str]]:
    return (result.stdout, result.exception_name())


def check_program(source: str, main_class: Optional[str] = None, *,
                  pass_specs=DEFAULT_PASS_SPECS,
                  jobs: int = 2,
                  max_steps: int = _MAX_STEPS) -> OracleResult:
    """Run ``source`` through the whole agreement matrix."""
    from repro.driver import CompilationSession
    from repro.encode.deserializer import decode_module
    from repro.frontend.errors import CompileError
    from repro.interp.interpreter import Interpreter
    from repro.interp.jit import JitCompiler
    from repro.jvm.interp import BytecodeInterpreter
    from repro.tsa.verifier import verify_module

    result = OracleResult(source)

    def diverged(pipeline: str, expected, actual, detail="") -> OracleResult:
        result.divergence = Divergence(pipeline, expected, actual, detail)
        return result

    # reference: plain compile, verify, interpret
    session = CompilationSession(cache=False)
    try:
        module = session.build_module(source)
    except CompileError:
        result.invalid = True
        return result
    except RecursionError:
        result.invalid = True
        return result
    try:
        verify_module(module)
        reference = _observed(
            Interpreter(module, max_steps=max_steps).run_main(main_class))
    except Exception as error:  # a crashing reference is a finding itself
        return diverged("interp", "clean run", type(error).__name__,
                        str(error)[:200])
    result.outcomes["interp"] = reference

    def compare(pipeline: str, run) -> bool:
        """Run one pipeline; record/compare; True to keep going."""
        try:
            observed = run()
        except Exception as error:
            diverged(pipeline, reference, type(error).__name__,
                     str(error)[:200])
            return False
        result.outcomes[pipeline] = observed
        if observed != reference:
            diverged(pipeline, reference, observed)
            return False
        return True

    # producer-side optimisation
    opt_session = CompilationSession(optimize=True, cache=False)
    opt_module = None

    def run_optimized():
        nonlocal opt_module
        opt_module = opt_session.build_module(source)
        opt_session.optimize(opt_module)
        verify_module(opt_module)
        return _observed(Interpreter(opt_module, max_steps=max_steps)
                         .run_main(main_class))

    if not compare("optimized", run_optimized):
        return result

    # each explicit pass spec
    for spec in pass_specs:
        def run_spec(spec=spec):
            spec_session = CompilationSession(passes=spec, cache=False)
            spec_module = spec_session.compile(source)
            verify_module(spec_module)
            return _observed(Interpreter(spec_module, max_steps=max_steps)
                             .run_main(main_class))
        if not compare(f"passes:{spec}", run_spec):
            return result

    # wire round trip: decode must verify, execute identically, and
    # re-encode to the very same bytes
    wire = holder = None
    try:
        wire = opt_session.encode(opt_module)
        decoded = decode_module(wire)
        verify_module(decoded)
        holder = decoded
    except Exception as error:
        return diverged("wire", "decodable module", type(error).__name__,
                        str(error)[:200])

    if not compare("wire", lambda: _observed(
            Interpreter(holder, max_steps=max_steps).run_main(main_class))):
        return result
    reencoded = opt_session.encode(holder)
    if reencoded != wire:
        return diverged("wire", f"{len(wire)} wire bytes",
                        f"{len(reencoded)} differing bytes",
                        "re-encode is not bit-identical")
    result.outcomes["reencode"] = ("bit-identical", None)

    # v1-vs-v2 round trip: a dictionary envelope and a delta against
    # the plain module's wire must both resolve to the very same v1
    # bytes and behave identically
    def run_wire_v2():
        from repro.cache import DictionaryStore
        from repro.encode.format import (
            encode_delta,
            encode_v2,
            resolve_stream,
        )
        store = DictionaryStore()
        units = [encode_v2(wire, (wire[:max(1, len(wire) // 2)],),
                           store=store),
                 encode_delta(session.encode(module), wire, store=store)]
        for unit in units:
            if resolve_stream(unit, store) != wire:
                return ("v2 unit did not resolve to the v1 bytes", None)
            decoded_v2 = decode_module(unit, store=store)
            verify_module(decoded_v2)
            observed = _observed(Interpreter(decoded_v2,
                                             max_steps=max_steps)
                                 .run_main(main_class))
            if observed != reference:
                return observed
        return reference

    if not compare("wire-v2", run_wire_v2):
        return result

    # serial vs parallel optimisation: bit-identical artifacts
    def run_jobs():
        parallel = CompilationSession(optimize=True, cache=False, jobs=jobs)
        parallel_module = parallel.build_module(source)
        parallel.optimize(parallel_module)
        parallel_wire = parallel.encode(parallel_module)
        if parallel_wire != wire:
            return (f"jobs={jobs} produced different bytes", None)
        return reference

    if not compare("jobs", run_jobs):
        return result

    # consumer code generation over the decoded module
    if not compare("jit", lambda: _observed(
            JitCompiler(holder).run_main(main_class))):
        return result

    # the speculative trace tier: traced and untraced runs of the very
    # same decoded module must agree on stdout, trap identity, *and*
    # the interpreter's own accounting (steps, dynamic check counts) --
    # a trace that skips or double-counts a check diverges here even
    # when the printed output happens to match
    def run_trace():
        from repro.interp.trace import TracingInterpreter
        untraced = Interpreter(holder, max_steps=max_steps)
        plain = _observed(untraced.run_main(main_class))
        traced_interp = TracingInterpreter(holder, max_steps=max_steps,
                                           threshold=4)
        traced = _observed(traced_interp.run_main(main_class))
        if traced != plain:
            return traced
        if traced_interp.steps != untraced.steps:
            return (f"traced {traced_interp.steps} steps, untraced "
                    f"{untraced.steps}", None)
        if dict(traced_interp.check_counts) != dict(untraced.check_counts):
            return (f"traced checks {dict(traced_interp.check_counts)}, "
                    f"untraced {dict(untraced.check_counts)}", None)
        return plain

    if not compare("trace", run_trace):
        return result

    # the independent bytecode baseline (shares the session's parse)
    def run_bytecode():
        classes = session.compile_to_classfiles(source)
        _unit, world = session.frontend(source)
        return _observed(BytecodeInterpreter(
            classes, world, max_steps=max_steps).run_main(main_class))

    compare("bytecode", run_bytecode)
    return result
