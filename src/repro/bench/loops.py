"""Loop-tier benchmark: what LICM + check hoisting buy on real loops.

For each loop-heavy corpus program the report compares four pipeline
configurations -- no optimisation, the loop tier alone
(``hoist_checks,licm``), the default pipeline, and the full pipeline
with the loop tier enabled -- along the axes the paper's E-series
tables use:

* **static**: ``nullcheck``/``idxcheck`` instruction counts and total
  SafeTSA instruction count of the transmitted module;
* **dynamic**: interpreter-observed executed-check counters and total
  interpreter steps for one ``main`` run;
* **blame**: the loop-tier pass statistics (invariants hoisted, checks
  hoisted, preheaders inserted) so a regression is attributable.

Every configuration's stdout must be byte-identical to the unoptimised
run -- the differential oracle's bit-identity requirement, enforced
here as an assertion rather than a statistic.  The report carries two
perf guards: the loop tier *alone* must strictly reduce the total
dynamic check count versus no optimisation (the attributable win), and
the full pipeline with the tier must never execute more checks than the
default pipeline.  Either failing makes ``runner loops`` exit nonzero.

The tier-only-vs-baseline framing is deliberate.  On this corpus the
full seven-pass pipeline ties the default five-pass one for dynamic
checks: ``cse`` already eliminates the in-loop duplicates a hoisted
check dominates, and the checks that survive have per-iteration
``getfield`` operands (e.g. MiniVM's dispatch loop calls helpers that
may store fields, so LICM correctly refuses to hoist the loads).  The
loop tier's measurable contribution is what it removes on its own.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.bench.corpus import corpus_source
from repro.driver import ALL_PASSES, CANONICAL_SPEC, spec_string
from repro.interp.interpreter import Interpreter
from repro.pipeline import compile_to_module

#: the loop-heavy subset of the corpus (array kernels + a dispatch loop)
LOOP_PROGRAMS = ("Linpack", "BitSieve", "MiniVM")

#: full pipeline with the loop tier enabled, in canonical slot order
LOOP_SPEC = spec_string(ALL_PASSES)

#: the loop tier by itself -- its effect with nothing else to share
#: credit with (parse_pass_spec normalises this to slot order)
TIER_SPEC = "hoist_checks,licm"

_CONFIGS = (
    ("baseline", None),
    ("loop_tier", TIER_SPEC),
    ("default", CANONICAL_SPEC),
    ("loops", LOOP_SPEC),
)

_MAX_STEPS = 80_000_000

#: pass statistics worth echoing into the report when nonzero
_BLAME_KEYS = ("licm_hoisted", "checks_hoisted_null",
               "checks_hoisted_idx", "preheaders")


def _measure(source: str, name: str, spec: Optional[str]) -> dict:
    from repro.opt.pipeline import optimize_module
    module = compile_to_module(source)
    stats: dict = {}
    started = time.perf_counter()
    if spec is not None:
        for flat in optimize_module(module, passes=spec,
                                    check_after_each_pass=True):
            for key, value in flat.items():
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    stats[key] = stats.get(key, 0) + value
    opt_seconds = time.perf_counter() - started
    interpreter = Interpreter(module, max_steps=_MAX_STEPS)
    result = interpreter.run_main(name)
    assert result.completed, f"{name}: {result.exception_name()}"
    return {
        "stdout": result.stdout,
        "static": {
            "nullcheck": module.count_opcodes("nullcheck"),
            "idxcheck": module.count_opcodes("idxcheck"),
            "instructions": module.instruction_count(),
        },
        "dynamic": {
            **dict(interpreter.check_counts),
            "steps": interpreter.steps,
        },
        "blame": {key: stats[key] for key in _BLAME_KEYS
                  if stats.get(key)},
        "opt_seconds": round(opt_seconds, 4),
    }


def _ratio(after: int, before: int) -> Optional[float]:
    return round(after / before, 4) if before else None


def loops_report(programs=None) -> dict:
    programs = tuple(programs) if programs is not None else LOOP_PROGRAMS
    per_program: dict[str, dict] = {}
    totals = {cfg: {"nullcheck": 0, "idxcheck": 0, "steps": 0}
              for cfg, _spec in _CONFIGS}
    for name in programs:
        source = corpus_source(name)
        rows: dict[str, dict] = {}
        stdout = None
        for cfg, spec in _CONFIGS:
            row = _measure(source, name, spec)
            if stdout is None:
                stdout = row["stdout"]
            else:
                assert row["stdout"] == stdout, \
                    f"{name}/{cfg}: output diverged from baseline"
            del row["stdout"]
            rows[cfg] = row
            for key in ("nullcheck", "idxcheck"):
                totals[cfg][key] += row["dynamic"][key]
            totals[cfg]["steps"] += row["dynamic"]["steps"]
        base = rows["baseline"]
        base_checks = base["dynamic"]["nullcheck"] \
            + base["dynamic"]["idxcheck"]
        rows["ratios"] = {}
        for cfg in ("loop_tier", "default", "loops"):
            row = rows[cfg]
            rows["ratios"][cfg] = {
                "dynamic_checks": _ratio(
                    row["dynamic"]["nullcheck"]
                    + row["dynamic"]["idxcheck"], base_checks),
                "dynamic_steps": _ratio(row["dynamic"]["steps"],
                                        base["dynamic"]["steps"]),
                "static_checks": _ratio(
                    row["static"]["nullcheck"] + row["static"]["idxcheck"],
                    base["static"]["nullcheck"]
                    + base["static"]["idxcheck"]),
                "static_instructions": _ratio(
                    row["static"]["instructions"],
                    base["static"]["instructions"]),
            }
        per_program[name] = rows

    def total_checks(cfg: str) -> int:
        return totals[cfg]["nullcheck"] + totals[cfg]["idxcheck"]

    return {
        "programs": list(programs),
        "specs": {cfg: spec or "" for cfg, spec in _CONFIGS},
        "per_program": per_program,
        "totals": totals,
        "guard": {
            # the attributable win: hoist_checks+licm alone must beat
            # running no passes at all
            "tier_reduces_dynamic_checks":
                total_checks("loop_tier") < total_checks("baseline"),
            # and enabling the tier in the full pipeline must never
            # regress the default pipeline
            "full_pipeline_not_worse":
                total_checks("loops") <= total_checks("default"),
            "baseline_dynamic_checks": total_checks("baseline"),
            "tier_dynamic_checks": total_checks("loop_tier"),
            "default_dynamic_checks": total_checks("default"),
            "loop_dynamic_checks": total_checks("loops"),
        },
    }


def loops_table(report: dict) -> str:
    """E-series style check-ratio table over the loop corpus."""

    def checks(row: dict) -> int:
        return row["dynamic"]["nullcheck"] + row["dynamic"]["idxcheck"]

    lines = [
        f"{'program':<12} {'baseline':>10} {'tier only':>10} "
        f"{'default':>10} {'full+tier':>10} {'tier/base':>9}   blame",
        "-" * 78,
    ]
    for name in report["programs"]:
        rows = report["per_program"][name]
        blame = rows["loop_tier"]["blame"]
        blame_text = " ".join(f"{k}={v}" for k, v in blame.items()) or "-"
        lines.append(
            f"{name:<12} {checks(rows['baseline']):>10} "
            f"{checks(rows['loop_tier']):>10} "
            f"{checks(rows['default']):>10} "
            f"{checks(rows['loops']):>10} "
            f"{rows['ratios']['loop_tier']['dynamic_checks']:>9.4f}   "
            f"{blame_text}")
    guard = report["guard"]
    lines.append("-" * 78)
    lines.append(
        f"{'total':<12} {guard['baseline_dynamic_checks']:>10} "
        f"{guard['tier_dynamic_checks']:>10} "
        f"{guard['default_dynamic_checks']:>10} "
        f"{guard['loop_dynamic_checks']:>10}")
    return "\n".join(lines)
