// Stand-in for sun.math.MutableBigInteger: in-place arbitrary-precision
// arithmetic; every operation rereads this.value[...] so check
// elimination across repeated accesses matters.
class MutableBigInt {
    int[] value;    // little-endian, base 1000000
    int intLen;

    MutableBigInt(int capacity) {
        value = new int[capacity];
        intLen = 0;
    }

    static MutableBigInt of(int v) {
        MutableBigInt out = new MutableBigInt(4);
        while (v > 0) {
            out.value[out.intLen] = v % 1000000;
            v = v / 1000000;
            out.intLen = out.intLen + 1;
        }
        return out;
    }

    void grow(int capacity) {
        if (capacity <= value.length) return;
        int[] bigger = new int[capacity * 2];
        for (int i = 0; i < intLen; i++) {
            bigger[i] = value[i];
        }
        value = bigger;
    }

    void normalize() {
        while (intLen > 0 && value[intLen - 1] == 0) {
            intLen = intLen - 1;
        }
    }

    void addInPlace(MutableBigInt other) {
        int n = intLen;
        if (other.intLen > n) n = other.intLen;
        grow(n + 1);
        int carry = 0;
        for (int i = 0; i < n; i++) {
            int sum = carry;
            if (i < intLen) sum = sum + value[i];
            if (i < other.intLen) sum = sum + other.value[i];
            value[i] = sum % 1000000;
            carry = sum / 1000000;
        }
        intLen = n;
        if (carry > 0) {
            value[n] = carry;
            intLen = n + 1;
        }
    }

    void mulSmallInPlace(int factor) {
        grow(intLen + 2);
        int carry = 0;
        for (int i = 0; i < intLen; i++) {
            int cell = value[i] * factor + carry;
            value[i] = cell % 1000000;
            carry = cell / 1000000;
        }
        int k = intLen;
        while (carry > 0) {
            value[k] = carry % 1000000;
            carry = carry / 1000000;
            k = k + 1;
        }
        if (k > intLen) intLen = k;
        normalize();
    }

    void shiftLimbsLeft(int count) {
        grow(intLen + count);
        for (int i = intLen - 1; i >= 0; i--) {
            value[i + count] = value[i];
        }
        for (int i = 0; i < count; i++) {
            value[i] = 0;
        }
        intLen = intLen + count;
        normalize();
    }

    int mod9() {
        // digit-sum trick: 1000000 % 9 == 1, so limbs sum mod 9 works
        int total = 0;
        for (int i = 0; i < intLen; i++) {
            total = (total + value[i]) % 9;
        }
        return total;
    }

    String render() {
        if (intLen == 0) return "0";
        String out = "" + value[intLen - 1];
        for (int i = intLen - 2; i >= 0; i--) {
            String chunk = "" + (value[i] + 1000000);
            out = out + chunk.substring(1, 7);
        }
        return out;
    }

    static void main() {
        MutableBigInt acc = of(1);
        for (int i = 2; i <= 30; i++) {
            acc.mulSmallInPlace(i);
        }
        System.out.println("30! = " + acc.render());
        System.out.println("30! mod 9 = " + acc.mod9());

        MutableBigInt total = of(0);
        MutableBigInt step = of(999999);
        for (int i = 0; i < 50; i++) {
            total.addInPlace(step);
            step.mulSmallInPlace(3);
            step.normalize();
        }
        System.out.println("series mod 9 = " + total.mod9());
        System.out.println("series limbs = " + total.intLen);

        MutableBigInt shifted = of(123456);
        shifted.shiftLimbsLeft(3);
        System.out.println("shifted = " + shifted.render());
    }
}
