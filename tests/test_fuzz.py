"""Tests for the fuzzing subsystem (repro.fuzz) and its findings.

Four layers:

* unit tests for the generator, minimizer, and mutators (determinism
  contracts included);
* the differential oracle and the reject-or-equivalent checker on
  known-good and known-bad inputs;
* regression replay of every attack fixture under
  ``tests/golden/attacks/`` -- each shrunken crasher found by a past
  campaign must map to its stable rejection code forever;
* IR-level regressions for the verifier/decoder rules those findings
  forced (``STSA-REF-004`` / ``DEC-TRAP-REF``: a trapping subblock
  tail's result is undefined on paths through its exception edge).
"""

import json
from pathlib import Path

import pytest

from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.fuzz.campaign import (
    BASE_PROGRAMS,
    program_seed,
    run_campaign,
    stream_bases,
)
from repro.fuzz.gen import RandomSource, generate_seeded
from repro.fuzz.minimize import (
    fixture_name,
    load_fixtures,
    minimize_bytes,
    minimize_lines,
    minimize_sequence,
    save_fixture,
)
from repro.fuzz.mutate import check_stream, mutate_stream
from repro.fuzz.oracle import check_program
from repro.pipeline import compile_to_module
from repro.ssa import ir
from repro.tsa.verifier import VerifyError, verify_module

ATTACKS_DIR = Path(__file__).parent / "golden" / "attacks"


# ======================================================================
# generator

class TestGenerator:
    def test_seeded_generation_is_deterministic(self):
        for seed in (0, 1, 7, 123456):
            assert generate_seeded(seed).source == \
                generate_seeded(seed).source

    def test_seeds_yield_distinct_programs(self):
        sources = {generate_seeded(seed).source for seed in range(20)}
        assert len(sources) > 15

    def test_generated_programs_compile_and_verify(self):
        for seed in range(15):
            generated = generate_seeded(seed)
            module = compile_to_module(generated.source, cache=False)
            verify_module(module)

    def test_campaign_seed_derivation(self):
        assert program_seed(3, 0) == 3 * 1_000_003
        assert program_seed(3, 1) != program_seed(4, 0)


# ======================================================================
# differential oracle

class TestOracle:
    def test_agreement_on_known_good_program(self):
        name, source = BASE_PROGRAMS[0]
        result = check_program(source)
        assert result.ok, str(result.divergence)
        # the whole matrix ran
        assert result.pipelines >= 7
        assert "jit" in result.outcomes
        assert "bytecode" in result.outcomes
        assert result.outcomes["reencode"] == ("bit-identical", None)

    def test_exception_paths_compared(self):
        source = """
class T {
    static void main() {
        int[] xs = new int[2];
        try { xs[5] = 1; }
        finally { System.out.println("fin"); }
    }
}
"""
        result = check_program(source)
        assert result.ok, str(result.divergence)
        stdout, exception = result.outcomes["interp"]
        assert stdout == "fin\n"
        assert exception == "java.lang.ArrayIndexOutOfBoundsException"

    def test_uncompilable_source_is_invalid_not_divergent(self):
        result = check_program("class { nonsense")
        assert result.invalid
        assert result.divergence is None


# ======================================================================
# minimizer

class TestMinimizer:
    def test_ddmin_finds_minimal_core(self):
        items = list(range(20))
        failing = lambda seq: 3 in seq and 11 in seq
        assert minimize_sequence(items, failing) == [3, 11]

    def test_requires_failing_input(self):
        with pytest.raises(ValueError):
            minimize_sequence([1, 2, 3], lambda seq: False)

    def test_probe_budget_bounds_work(self):
        calls = []

        def failing(seq):
            calls.append(1)
            return 7 in seq

        minimize_sequence(list(range(200)), failing, max_probes=50)
        assert len(calls) <= 51  # initial check + at most max_probes

    def test_minimize_bytes_and_lines(self):
        data = b"aaaaXaaaa"
        assert minimize_bytes(data, lambda d: b"X" in d) == b"X"
        text = "one\nkeep\nthree\nfour"
        assert minimize_lines(text, lambda t: "keep" in t) == "keep"

    def test_fixture_round_trip(self, tmp_path):
        data = b"\x00\x01attack"
        meta = {"code": "DEC-IO", "mutator": "truncate"}
        path = save_fixture(tmp_path, data, meta)
        assert path.read_bytes() == data
        assert path.stem == fixture_name(data)
        fixtures = load_fixtures(tmp_path)
        assert fixtures == [(fixture_name(data), data, meta)]


# ======================================================================
# wire-stream mutation

class TestMutation:
    def test_mutators_are_deterministic(self):
        base = encode_module(compile_to_module(BASE_PROGRAMS[0][1],
                                               cache=False))
        first = [mutate_stream(base, RandomSource(99)) for _ in range(20)]
        second = [mutate_stream(base, RandomSource(99)) for _ in range(20)]
        # one RandomSource per run: the whole mutant sequence repeats
        run_a = []
        src = RandomSource(42)
        for _ in range(30):
            run_a.append(mutate_stream(base, src))
        run_b = []
        src = RandomSource(42)
        for _ in range(30):
            run_b.append(mutate_stream(base, src))
        assert run_a == run_b
        assert first[0] == second[0]

    def test_pristine_streams_are_accepted(self):
        for name, wire in stream_bases():
            outcome = check_stream(wire)
            assert outcome.kind == "accepted", (name, outcome)

    def test_garbage_is_rejected_with_codes(self):
        assert check_stream(b"").code == "DEC-IO"
        outcome = check_stream(b"not a safetsa stream at all")
        assert outcome.kind == "rejected"
        assert outcome.code == "DEC-MAGIC"

    def test_truncation_and_trailing_data_rejected(self):
        wire = stream_bases()[0][1]
        truncated = check_stream(wire[: len(wire) // 2])
        assert truncated.kind == "rejected"
        assert truncated.code.startswith("DEC-")
        trailing = check_stream(wire + b"\xff\xff\xff\xff")
        assert trailing.kind == "rejected"
        assert trailing.code == "DEC-TRAILING"

    @pytest.mark.slow
    def test_stream_smoke_campaign_holds_invariant(self):
        result = run_campaign(seed=11, budget=300, mode="streams",
                              minimize=False)
        assert result.mutations == 300
        assert result.rejected + result.accepted == 300
        assert result.ok, result.summary()
        # the taxonomy attributes every rejection to a stable code
        assert sum(result.taxonomy.values()) == 300
        assert all(code.startswith(("DEC-", "STSA-", "ran", "no-entry",
                                    "bounded", "stackoverflow"))
                   for code in result.taxonomy)

    @pytest.mark.slow
    def test_campaigns_are_deterministic(self):
        first = run_campaign(seed=5, budget=250, mode="streams",
                             minimize=False)
        second = run_campaign(seed=5, budget=250, mode="streams",
                              minimize=False)
        assert first.taxonomy == second.taxonomy
        assert first.mutator_counts == second.mutator_counts
        assert (first.rejected, first.accepted) == \
            (second.rejected, second.accepted)


# ======================================================================
# attack-fixture replay: once rejected, forever rejected

class TestAttackFixtures:
    def test_fixtures_exist(self):
        assert load_fixtures(ATTACKS_DIR), \
            "tests/golden/attacks/ must ship at least one crasher"

    def test_every_fixture_maps_to_its_stable_rejection(self):
        for name, data, meta in load_fixtures(ATTACKS_DIR):
            outcome = check_stream(data)
            assert outcome.kind == "rejected", (name, outcome)
            assert outcome.code == meta["code"], (name, outcome)

    def test_fixture_bytes_are_content_addressed(self):
        for name, data, _meta in load_fixtures(ATTACKS_DIR):
            assert name == fixture_name(data)


# ======================================================================
# the rules the findings forced

def _tamper_trap_shadow(module):
    """Recreate the campaign finding in-memory: point a later getelt's
    index at the trapping idxcheck inside the try block.  Needs the
    *optimized* module, where CSE merged the per-access nullchecks, so
    the try-block idxcheck and the later loop index the same array
    value (exactly the shape of the original mutated stream)."""
    function = next(f for m, f in module.functions.items()
                    if m.name == "main")
    early = None
    for block in function.blocks:
        if block.instrs and isinstance(block.instrs[-1], ir.IdxCheck) \
                and block.exc_succ() is not None:
            early = block.instrs[-1]
            break
    assert early is not None, "no trapping idxcheck in the try body"
    target = None
    for block in function.blocks:
        for instr in block.instrs:
            if isinstance(instr, ir.GetElt) and instr.operands[1] is not \
                    early and instr.operands[0] is early.operands[0]:
                target = instr
    assert target is not None, "no later getelt over the same array"
    target.operands[1] = early
    return function


class TestTrappingTailRule:
    SOURCE = BASE_PROGRAMS[2][1]  # arrays: try/catch over xs[7]

    def test_verifier_rejects_trap_shadow_reference(self):
        module = compile_to_module(self.SOURCE, optimize=True, cache=False)
        _tamper_trap_shadow(module)
        with pytest.raises(VerifyError) as info:
            verify_module(module)
        assert info.value.code == "STSA-REF-004"

    def test_decoder_rejects_trap_shadow_reference(self):
        # the decoder enforces the same rule on the wire (the fixtures
        # under golden/attacks replay real mutated streams; this one is
        # synthesized, so the two tests fail independently)
        module = compile_to_module(self.SOURCE, optimize=True, cache=False)
        _tamper_trap_shadow(module)
        with pytest.raises(DecodeError) as info:
            decode_module(encode_module(module))
        assert info.value.code == "DEC-TRAP-REF"

    def test_phi_operand_may_not_be_its_exception_edges_tail(self):
        source = """
class T {
    static int f(int a, int b, int c) {
        int x = 5;
        try { x = a / b; x = x / c; }
        catch (ArithmeticException e) { x = x + 1000; }
        return x;
    }
    static void main() { System.out.println(f(12, 3, 2)); }
}
"""
        module = compile_to_module(source, cache=False)
        verify_module(module)
        function = next(f for m, f in module.functions.items()
                        if m.name == "f")
        tampered = False
        for block in function.blocks:
            kinds = {kind for _, kind in block.preds}
            if kinds != {"exc"} or not block.phis:
                continue
            for phi in block.phis:
                for index, (pred, _kind) in enumerate(block.preds):
                    tail = pred.instrs[-1] if pred.instrs else None
                    if tail is not None and tail.traps \
                            and tail.plane == phi.plane:
                        phi.operands[index] = tail
                        tampered = True
        assert tampered, "no dispatch phi with a plane-compatible tail"
        with pytest.raises(VerifyError) as info:
            verify_module(module)
        assert info.value.code == "STSA-REF-004"


class TestDecodeErrorCodes:
    def test_default_code(self):
        error = DecodeError("anything")
        assert error.code == "DEC-MALFORMED"
        assert "[DEC-MALFORMED]" in str(error)

    def test_empty_and_truncated_streams(self):
        with pytest.raises(DecodeError) as info:
            decode_module(b"")
        assert info.value.code == "DEC-IO"

    def test_bad_magic(self):
        with pytest.raises(DecodeError) as info:
            decode_module(b"XXXXXXXXXXXXXXXX")
        assert info.value.code == "DEC-MAGIC"

    def test_trailing_data(self):
        wire = encode_module(compile_to_module(BASE_PROGRAMS[0][1],
                                               cache=False))
        with pytest.raises(DecodeError) as info:
            decode_module(wire + b"\x01\x02\x03\x04")
        assert info.value.code == "DEC-TRAILING"


class TestExecutionGuards:
    def test_allocation_cap(self):
        from repro.interp.interpreter import (
            AllocationLimitExceeded,
            Interpreter,
        )
        source = ("class T { static void main() "
                  "{ int[] big = new int[70000]; } }")
        module = compile_to_module(source, cache=False)
        interp = Interpreter(module, max_steps=10_000)
        interp.max_array_length = 1 << 16
        with pytest.raises(AllocationLimitExceeded):
            interp.run_main()
        # without the cap the same program runs fine
        assert Interpreter(module, max_steps=1_000_000).run_main() \
            .exception is None


# ======================================================================
# CLI + report plumbing

class TestCliAndReport:
    def test_cli_fuzz_smoke(self, tmp_path, capsys):
        from repro.cli import main
        report_path = tmp_path / "fuzz.json"
        code = main(["fuzz", "--seed", "0", "--budget", "50",
                     "--mode", "streams", "-q", "--no-minimize",
                     "--json", str(report_path)])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["streams"]["mutations"] == 50
        assert report["streams"]["findings"] == 0
        assert sum(report["streams"]["taxonomy"].values()) == 50
        out = capsys.readouterr().out
        assert "fuzz campaign" in out

    def test_report_shape(self):
        result = run_campaign(seed=1, budget=5, mode="all",
                              minimize=False)
        report = result.report()
        assert report["mode"] == "all"
        assert report["programs"]["count"] >= 1
        assert report["programs"]["divergences"] == 0
        # mode="all" runs the v1 stream lane at full budget plus the
        # v2 envelope lane at half budget
        assert report["streams"]["mutations"] == 5 + max(1, 5 // 2)
        json.dumps(report)  # must be JSON-able as-is
