"""SafeTSA consumer-side services: ``(l, r)`` layout and verification.

:mod:`repro.tsa.layout` computes the dominator-relative register numbering
used by the wire format (paper Section 2): a value reference is a pair
``(l, r)`` where ``l`` counts levels up the dominator tree from the using
block and ``r`` is the register index on the instruction's implied plane
within that block.  References to non-dominating definitions are simply
*unrepresentable*.

:mod:`repro.tsa.verifier` is the paper's cheap consumer check (Section 9:
"simple counters holding the numbers of defined values for each type in
each basic block") extended with the structural rules a decoded module
must satisfy; it exists mainly for hand-constructed attack modules and for
the verification-cost comparison against JVM bytecode dataflow analysis.
"""

from repro.tsa.layout import FunctionLayout, layout_function
from repro.tsa.verifier import VerifyError, verify_function, verify_module

__all__ = [
    "FunctionLayout",
    "layout_function",
    "VerifyError",
    "verify_function",
    "verify_module",
    "ModuleBuilder",
]


def __getattr__(name):
    # lazy: these pull in heavier modules
    if name == "ModuleBuilder":
        from repro.tsa.builder import ModuleBuilder
        return ModuleBuilder
    if name == "format_function_lr":
        from repro.tsa.disasm import format_function_lr
        return format_function_lr
    if name == "format_module_lr":
        from repro.tsa.disasm import format_module_lr
        return format_module_lr
    raise AttributeError(name)
