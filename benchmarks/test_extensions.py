"""Extension ablations: the paper's proposed improvements, measured.

Section 8 closes with "we can identify much scope for improvement ...
the integration of alias information into the memory handling ...
partitioning Mem by field name"; Section 4 highlights the transport of
checked values across phi-joins.  Both are implemented; this bench
quantifies what they add on top of the paper's base optimiser.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.opt.pipeline import optimize_module
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module

BASE = ["constprop", "cse", "dce"]
WITH_SAFEPHI = ["constprop", "safephi", "cse", "dce"]
WITH_FIELDS = ["constprop", "safephi", "cse_fields", "dce"]


def _measure(passes):
    out = {}
    for name in CORPUS_PROGRAMS:
        module = compile_to_module(corpus_source(name))
        optimize_module(module, passes)
        verify_module(module)
        out[name] = {
            "instructions": module.instruction_count(),
            "nullchecks": module.count_opcodes("nullcheck"),
            "idxchecks": module.count_opcodes("idxcheck"),
            "loads": module.count_opcodes("getfield", "getelt",
                                          "getstatic"),
        }
    return out


@pytest.fixture(scope="module")
def results():
    return {
        "base": _measure(BASE),
        "safephi": _measure(WITH_SAFEPHI),
        "fields": _measure(WITH_FIELDS),
    }


def _total(results, config, key):
    return sum(row[key] for row in results[config].values())


def test_extension_ablation_table(results):
    print()
    print(f"{'config':10} {'instructions':>13} {'nullchecks':>11} "
          f"{'idxchecks':>10} {'memory loads':>13}")
    for config in ("base", "safephi", "fields"):
        print(f"{config:10} {_total(results, config, 'instructions'):13} "
              f"{_total(results, config, 'nullchecks'):11} "
              f"{_total(results, config, 'idxchecks'):10} "
              f"{_total(results, config, 'loads'):13}")
    # each extension is monotone: never worse than the previous stage
    for key in ("instructions", "nullchecks", "idxchecks", "loads"):
        assert _total(results, "safephi", key) \
            <= _total(results, "base", key), key
        assert _total(results, "fields", key) \
            <= _total(results, "safephi", key), key


def test_field_analysis_removes_additional_loads(results):
    """The paper's expected direction: alias partitioning finds more
    common subexpressions."""
    assert _total(results, "fields", "loads") \
        < _total(results, "safephi", "loads")


def test_extended_pipeline_preserves_semantics():
    from repro.interp.interpreter import Interpreter
    for name in ("BigInt", "BinaryCode"):
        source = corpus_source(name)
        expected = Interpreter(compile_to_module(source),
                               max_steps=80_000_000).run_main(name)
        module = compile_to_module(source)
        optimize_module(module, WITH_FIELDS)
        actual = Interpreter(module, max_steps=80_000_000).run_main(name)
        assert actual.stdout == expected.stdout, name


def test_safephi_pass_benchmark(benchmark):
    from repro.opt.safephi import run_safe_phi_propagation
    source = corpus_source("Environment")

    def run():
        module = compile_to_module(source)
        return sum(run_safe_phi_propagation(f)
                   for f in module.functions.values())

    benchmark(run)


def test_partitioned_memdep_benchmark(benchmark):
    from repro.opt.memdep import MemDep
    source = corpus_source("BigInt")
    module = compile_to_module(source)

    def run():
        return [MemDep(f, partitioned=True)
                for f in module.functions.values()]

    benchmark(run)
