"""Structured serving errors: one stable ``SERVE-*`` code per failure
class, registered in :data:`repro.analysis.diagnostics.STABLE_CODES`
exactly like the decoder's ``DEC-*`` codes -- the registry scan in
``tests/test_loader.py`` rejects unregistered raise sites, and the
reachability audit in ``tests/test_serve.py`` pins one fixture per
code.

A :class:`ServeError` crossing the HTTP boundary becomes the stable
JSON error envelope::

    {"error": {"code": "SERVE-...", "message": "...", "detail": {...}}}

with the HTTP status from :data:`HTTP_STATUS`.  ``detail`` is optional
structured context -- for ``SERVE-REJECTED`` it carries the underlying
``DEC-*`` code, so a client can key on the decoder's taxonomy without
parsing prose.
"""

from __future__ import annotations

from typing import Optional

#: SERVE code -> HTTP status the JSON envelope ships under.
HTTP_STATUS: dict[str, int] = {
    "SERVE-RATE": 429,
    "SERVE-QUOTA-BYTES": 413,
    "SERVE-QUOTA-COMPILE": 429,
    "SERVE-NOT-FOUND": 404,
    "SERVE-BAD-REQUEST": 400,
    "SERVE-ENDPOINT": 404,
    "SERVE-COMPILE": 422,
    "SERVE-REJECTED": 422,
    "SERVE-CHAIN": 409,
    "SERVE-SIG": 409,
}


class ServeError(Exception):
    """A serving-layer rejection with a stable machine-readable code."""

    def __init__(self, message: str, code: str,
                 detail: Optional[dict] = None):
        if code not in HTTP_STATUS:
            raise ValueError(f"unregistered serve code {code!r}")
        self.code = code
        self.detail = detail
        super().__init__(f"{message} [{code}]")

    @property
    def message(self) -> str:
        text = str(self)
        suffix = f" [{self.code}]"
        return text[:-len(suffix)] if text.endswith(suffix) else text

    @property
    def http_status(self) -> int:
        return HTTP_STATUS[self.code]

    def as_payload(self) -> dict:
        """The wire shape of the error envelope's ``error`` member."""
        payload = {"code": self.code, "message": self.message}
        if self.detail is not None:
            payload["detail"] = self.detail
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ServeError":
        """Rebuild the client-side exception from an error envelope."""
        error = payload.get("error", payload)
        return cls(error.get("message", "server error"),
                   error.get("code", "SERVE-BAD-REQUEST"),
                   error.get("detail"))
