"""Tests for the paper's proposed-improvement extensions.

Section 4: transport of checked values across phi-joins (safe-phi
propagation).  Section 8: "a dramatic improvement would be the
integration of alias information into the memory handling ... a simple
form of field analysis ... partitioning Mem by field name."
"""

import pytest

from repro.interp.interpreter import Interpreter
from repro.opt.cse import run_cse
from repro.opt.memdep import MemDep, partition_of
from repro.opt.pipeline import optimize_module
from repro.opt.safephi import run_safe_phi_propagation
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module


def count(function, opcode):
    return sum(1 for b in function.reachable_blocks()
               for i in b.all_instrs() if i.opcode == opcode)


class TestSafePhiPropagation:
    LOOP_SOURCE = """
    class Node {
        int value;
        static int run(int n) {
            Node cur = new Node();
            int total = 0;
            for (int i = 0; i < n; i++) {
                total += cur.value;
                if (i % 3 == 0) cur = new Node();
            }
            return total;
        }
        static void main() { System.out.println(run(10)); }
    }
    """

    def test_loop_carried_safety_promotes_phi(self):
        module = compile_to_module(self.LOOP_SOURCE)
        function = module.function_named("Node", "run")
        promoted = run_safe_phi_propagation(function)
        assert promoted >= 1
        verify_module(module)
        safe_phis = [p for b in function.blocks for p in b.phis
                     if p.plane.kind == "safe"]
        assert safe_phis

    def test_checks_eliminated_after_promotion(self):
        plain = compile_to_module(self.LOOP_SOURCE)
        optimized = compile_to_module(self.LOOP_SOURCE, optimize=True)
        run_fn = lambda m: m.function_named("Node", "run")
        assert count(run_fn(optimized), "nullcheck") \
            < count(run_fn(plain), "nullcheck")
        verify_module(optimized)

    def test_dynamic_check_reduction(self):
        plain = Interpreter(compile_to_module(self.LOOP_SOURCE))
        plain.run_main("Node")
        optimized = Interpreter(
            compile_to_module(self.LOOP_SOURCE, optimize=True))
        optimized.run_main("Node")
        assert optimized.check_counts["nullcheck"] \
            < plain.check_counts["nullcheck"]

    def test_not_promoted_when_null_reaches(self):
        source = """
        class Node {
            int value;
            static int run(boolean c) {
                Node cur = new Node();
                if (c) cur = null;
                Node other = cur;
                int total = 0;
                for (int i = 0; i < 2; i++) {
                    if (other != null) total += other.value;
                    other = null;
                    if (i == 0) other = new Node();
                }
                return total;
            }
        }
        """
        module = compile_to_module(source)
        function = module.function_named("Node", "run")
        run_safe_phi_propagation(function)
        verify_module(module)
        # behaviour check: null path still works
        optimized = compile_to_module(source, optimize=True)
        verify_module(optimized)
        fn = optimized.function_named("Node", "run")
        result = Interpreter(optimized).run_function(fn, [True])
        assert result.exception is None

    def test_mixed_origin_phi_not_promoted(self):
        source = """
        class Node {
            int value;
            static int run(Node given, boolean c) {
                Node cur = new Node();
                if (c) cur = given;   // unchecked parameter: unsafe
                return cur.value;
            }
        }
        """
        module = compile_to_module(source)
        function = module.function_named("Node", "run")
        assert run_safe_phi_propagation(function) == 0
        # the check must stay: given may be null
        optimized = compile_to_module(source, optimize=True)
        fn = optimized.function_named("Node", "run")
        result = Interpreter(optimized).run_function(fn, [None, True])
        assert result.exception_name() == "java.lang.NullPointerException"

    def test_pipeline_with_safephi_preserves_corpus(self):
        from repro.bench.corpus import corpus_source
        source = corpus_source("Parser")
        plain = Interpreter(compile_to_module(source),
                            max_steps=50_000_000).run_main("Parser")
        optimized_module = compile_to_module(source, optimize=True)
        verify_module(optimized_module)
        optimized = Interpreter(optimized_module,
                                max_steps=50_000_000).run_main("Parser")
        assert optimized.stdout == plain.stdout


class TestFieldPartitionedMemory:
    def test_partition_keys(self):
        module = compile_to_module(
            "class T { int a; static int f(T t, int[] xs, double[] ds) {"
            "t.a = 1; xs[0] = 2; ds[0] = 3.0; return t.a + xs[0]; } }")
        function = module.function_named("T", "f")
        kinds = set()
        for block in function.blocks:
            for instr in block.instrs:
                partition = partition_of(instr)
                if partition is not None:
                    kinds.add(partition)
        assert ("field", "T.a") in kinds
        assert ("array", "int") in kinds
        assert ("array", "double") in kinds

    def test_store_to_other_field_does_not_clobber(self):
        source = ("class T { int a; int b; static int f(T t) {"
                  "int x = t.a; t.b = 5; int y = t.a; return x + y; } }")
        module = compile_to_module(source)
        function = module.function_named("T", "f")
        run_cse(function, partition_memory=True)
        loads = [i for b in function.blocks for i in b.instrs
                 if i.opcode == "getfield"]
        assert len([l for l in loads if l.field.name == "a"]) == 1
        verify_module(module)

    def test_store_to_same_field_still_clobbers(self):
        source = ("class T { int a; static int f(T t) {"
                  "int x = t.a; t.a = 5; int y = t.a; return x + y; } }")
        module = compile_to_module(source)
        function = module.function_named("T", "f")
        run_cse(function, partition_memory=True)
        loads = [i for b in function.blocks for i in b.instrs
                 if i.opcode == "getfield"]
        assert len(loads) == 2

    def test_array_store_does_not_clobber_other_element_type(self):
        source = ("class T { static int f(int[] xs, double[] ds) {"
                  "int x = xs[0]; ds[0] = 1.5; int y = xs[0];"
                  "return x + y; } }")
        module = compile_to_module(source)
        function = module.function_named("T", "f")
        run_cse(function, partition_memory=True)
        gets = [i for b in function.blocks for i in b.instrs
                if i.opcode == "getelt"
                and str(i.array_type.element) == "int"]
        assert len(gets) == 1
        verify_module(module)

    def test_same_element_type_still_clobbers(self):
        # int[] stores may alias other int[] loads (same partition)
        source = ("class T { static int f(int[] xs, int[] ys) {"
                  "int x = xs[0]; ys[0] = 9; int y = xs[0];"
                  "return x + y; } }")
        module = compile_to_module(source)
        function = module.function_named("T", "f")
        run_cse(function, partition_memory=True)
        gets = [i for b in function.blocks for i in b.instrs
                if i.opcode == "getelt"]
        assert len(gets) == 2

    def test_calls_clobber_all_partitions(self):
        source = ("class T { int a; static void g() { }"
                  "static int f(T t) {"
                  "int x = t.a; g(); int y = t.a; return x + y; } }")
        module = compile_to_module(source)
        function = module.function_named("T", "f")
        run_cse(function, partition_memory=True)
        loads = [i for b in function.blocks for i in b.instrs
                 if i.opcode == "getfield"]
        assert len(loads) == 2

    def test_partitioned_mode_preserves_corpus_behaviour(self):
        from repro.bench.corpus import corpus_source
        for name in ("BigInt", "Environment"):
            source = corpus_source(name)
            plain = Interpreter(compile_to_module(source),
                                max_steps=50_000_000).run_main(name)
            module = compile_to_module(source)
            optimize_module(module,
                            passes=["constprop", "safephi", "cse_fields",
                                    "dce"])
            verify_module(module)
            result = Interpreter(module, max_steps=50_000_000) \
                .run_main(name)
            assert result.stdout == plain.stdout, name

    def test_partitioned_never_worse_than_unified(self):
        from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
        for name in CORPUS_PROGRAMS:
            source = corpus_source(name)
            unified = compile_to_module(source)
            optimize_module(unified)
            partitioned = compile_to_module(source)
            optimize_module(partitioned,
                            passes=["constprop", "safephi", "cse_fields",
                                    "dce"])
            assert partitioned.instruction_count() \
                <= unified.instruction_count(), name
