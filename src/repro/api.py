"""High-level public API: the producer / consumer pipeline in five calls.

The functions here wire the subsystems together::

    source --frontend--> typed AST --uast--> UAST --ssa--> SSA + CST
           --tsa.layout--> SafeTSA module --opt--> optimised module
           --encode--> wire bytes --decode--> module --interp--> result
"""

from __future__ import annotations

from typing import Optional


def compile_source(source: str, *, optimize: bool = False,
                   passes=None, prune_phis: bool = True,
                   filename: str = "<source>"):
    """Compile MiniJava++ source text to a SafeTSA :class:`~repro.tsa.module.Module`.

    ``optimize`` runs the paper's producer-side pipeline (constant
    propagation, CSE with memory dependence, check elimination, DCE)
    before layout; ``passes`` selects an explicit pipeline spec instead
    (see :func:`repro.driver.passes.parse_pass_spec`).  ``prune_phis``
    applies Briggs-style dead-phi pruning during SSA construction
    (Section 7 reports ~31% fewer phis).
    """
    from repro.pipeline import compile_to_module
    return compile_to_module(source, optimize=optimize, passes=passes,
                             prune_phis=prune_phis, filename=filename)


def compile_to_bytecode(source: str, *, filename: str = "<source>"):
    """Compile MiniJava++ source to the Java-bytecode baseline
    (:class:`~repro.jvm.classfile.ClassFileSet`)."""
    from repro.pipeline import compile_to_classfiles
    return compile_to_classfiles(source, filename=filename)


def encode_module(module) -> bytes:
    """Externalize a SafeTSA module into its wire format."""
    from repro.encode.serializer import encode_module as _encode
    return _encode(module)


def decode_module(data: bytes):
    """Decode wire bytes into a verified SafeTSA module.

    Raises :class:`repro.encode.deserializer.DecodeError` on any stream in
    which a well-formed module is unrepresentable.
    """
    from repro.encode.deserializer import decode_module as _decode
    return _decode(data)


def load_module(data: bytes, *, lazy: bool = False,
                jobs: Optional[int] = None):
    """Load wire bytes through the fused verifying loader.

    One pass decodes *and* verifies; repeat loads of the same bytes hit
    the verified-module cache and skip the residual rule sweeps.
    ``lazy=True`` defers each function body to first touch; ``jobs``
    fans warm-load body decoding across N threads (0 = one per CPU).
    Rejects exactly the streams :func:`decode_module` +
    ``verify_module`` reject (see ``docs/LOADER.md``).
    """
    from repro.loader import load_module as _load
    return _load(data, lazy=lazy, jobs=jobs)


def run_module(module, main_class: Optional[str] = None,
               method: str = "main"):
    """Execute a module's entry point; returns an ExecutionResult."""
    from repro.interp.interpreter import Interpreter
    return Interpreter(module).run_main(main_class, method)
