"""Compilation pipeline: source text to SafeTSA module (and the bytecode
baseline)."""

from __future__ import annotations

from time import perf_counter

from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.ssa.construction import build_function
from repro.ssa.ir import Module
from repro.typesys.table import TypeTable
from repro.typesys.types import ArrayType, Type
from repro.typesys.world import World
from repro.uast.builder import UastBuilder


#: Producer-pipeline flag defaults; the compilation-cache key covers
#: exactly these, so cache writers and readers must agree on them.
PIPELINE_FLAG_DEFAULTS = {
    "optimize": False, "prune_phis": True, "eager_phis": True}


def pipeline_cache_key(cache, source: str, **flags) -> str:
    """The cache key :func:`compile_to_module` uses for this compile."""
    merged = dict(PIPELINE_FLAG_DEFAULTS)
    merged.update(flags)
    return cache.key(source, **merged)


def compile_to_module(source: str, *, optimize: bool = False,
                      prune_phis: bool = True, eager_phis: bool = True,
                      filename: str = "<source>",
                      cache=None, stage_seconds=None) -> Module:
    """Full producer pipeline: parse, check, lower, build SSA, optimise.

    ``cache`` is an optional :class:`repro.cache.CompilationCache` (pass
    ``False`` to force a cold compile even when a process-wide default
    cache is enabled).  On a hit the producer pipeline is skipped
    entirely and the cached wire bytes are decoded -- the cheap,
    self-validating consumer path.

    ``stage_seconds`` is an optional mutable mapping; wall-clock seconds
    for the ``parse``, ``ssa`` and ``opt`` stages (and ``decode`` on a
    cache hit) are accumulated into it.
    """
    if cache is None:
        from repro.cache import default_cache
        cache = default_cache()
    key = None
    if cache:
        key = pipeline_cache_key(cache, source, optimize=optimize,
                                 prune_phis=prune_phis,
                                 eager_phis=eager_phis)
        wire = cache.get(key)
        if wire is not None:
            from repro.encode.deserializer import decode_module
            start = perf_counter()
            module = decode_module(wire)
            _credit(stage_seconds, "decode", start)
            return module
    module = _compile_uncached(source, optimize=optimize,
                               prune_phis=prune_phis,
                               eager_phis=eager_phis, filename=filename,
                               stage_seconds=stage_seconds)
    if cache:
        from repro.encode.serializer import encode_module
        cache.put(key, encode_module(module))
    return module


def _credit(stage_seconds, stage: str, start: float) -> float:
    now = perf_counter()
    if stage_seconds is not None:
        stage_seconds[stage] = stage_seconds.get(stage, 0.0) + (now - start)
    return now


def _compile_uncached(source: str, *, optimize: bool, prune_phis: bool,
                      eager_phis: bool, filename: str,
                      stage_seconds=None) -> Module:
    start = perf_counter()
    unit = parse_compilation_unit(source, filename)
    start = _credit(stage_seconds, "parse", start)
    world = analyze(unit)
    table = TypeTable(world)
    module = Module(world, table)
    uast_builder = UastBuilder(world)
    for decl in unit.classes:
        module.classes.append(decl.info)
        table.declare_class(decl.info)
        for umethod in uast_builder.build_class(decl):
            function = build_function(world, decl.info, umethod,
                                      eager_phis=eager_phis)
            module.add_function(function)
    _intern_used_types(module)
    if prune_phis:
        from repro.ssa.phi_pruning import prune_dead_phis
        for function in module.functions.values():
            prune_dead_phis(function)
    start = _credit(stage_seconds, "ssa", start)
    if optimize:
        from repro.opt.pipeline import optimize_module
        optimize_module(module)
        _credit(stage_seconds, "opt", start)
    return module


def _intern_used_types(module: Module) -> None:
    """Make sure every type referenced by an instruction is in the table."""
    table = module.type_table
    for function in module.functions.values():
        for block in function.blocks:
            for instr in block.all_instrs():
                plane = instr.plane
                if plane is not None and plane.kind != "safeidx":
                    _intern_type(table, plane.type)
                for attr in ("target_type", "ref_type", "array_type",
                             "plane_type"):
                    value = getattr(instr, attr, None)
                    if isinstance(value, Type):
                        _intern_type(table, value)


def _intern_type(table: TypeTable, type: Type) -> None:
    if type not in table:
        table.intern(type)
    if isinstance(type, ArrayType):
        _intern_type(table, type.element)


def compile_to_classfiles(source: str, *, filename: str = "<source>"):
    """Baseline pipeline: parse, check, lower, emit stack bytecode."""
    from repro.jvm.codegen import compile_unit
    unit = parse_compilation_unit(source, filename)
    world = analyze(unit)
    uast_builder = UastBuilder(world)
    per_class = {}
    for decl in unit.classes:
        per_class[decl.info] = uast_builder.build_class(decl)
    return compile_unit(world, per_class)
