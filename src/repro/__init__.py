"""SafeTSA: a type-safe, referentially secure mobile-code representation.

Reproduction of Amme, Dalton, von Ronne & Franz, *SafeTSA: A Type Safe and
Referentially Secure Mobile-Code Representation Based on Static Single
Assignment Form* (PLDI 2001).

The package is organised as a complete producer/consumer toolchain:

- :mod:`repro.frontend` -- a Java-subset ("MiniJava++") lexer, parser and
  semantic analyser (the paper used a modified Pizza compiler).
- :mod:`repro.typesys` -- the Java-like type hierarchy and the SafeTSA
  *type table* with per-type operation tables.
- :mod:`repro.uast` -- the Unified Abstract Syntax Tree, the structured IR
  the SSA generator consumes.
- :mod:`repro.ssa` -- CFG, dominators, and eager Brandis/Moessenboeck-style
  SSA construction with Briggs phi pruning.
- :mod:`repro.tsa` -- the SafeTSA representation itself: type-separated
  register planes, dominator-relative ``(l, r)`` value references, the
  Control Structure Tree, and the counter-based consumer verifier.
- :mod:`repro.opt` -- producer-side optimisations (constant propagation,
  CSE over a ``Mem``-threaded memory SSA, dead-code and check elimination).
- :mod:`repro.encode` -- the three-phase bit-level wire format in which
  ill-formed references are unrepresentable.
- :mod:`repro.loader` -- the fused verifying loader: one decode pass
  plus a residual rule sweep, lazy body decoding, and a verified-module
  cache for warm/parallel loads.
- :mod:`repro.interp` -- a reference interpreter for SafeTSA modules (the
  stand-in for the paper's dynamic code generator).
- :mod:`repro.jvm` -- the Java-bytecode baseline: stack codegen, class-file
  size model, bytecode interpreter and dataflow verifier.
- :mod:`repro.bench` -- corpus and measurement harness regenerating the
  paper's Figure 5 and Figure 6.

Typical use::

    from repro import compile_source, encode_module, load_module
    module = compile_source(JAVA_SOURCE, optimize=True)
    wire = encode_module(module)
    received = load_module(wire)  # fused decode + verify

    from repro.interp import Interpreter
    result = Interpreter(received).run_main()
"""

from repro.api import (
    compile_source,
    compile_to_bytecode,
    decode_module,
    encode_module,
    load_module,
    run_module,
)

__all__ = [
    "compile_source",
    "compile_to_bytecode",
    "decode_module",
    "encode_module",
    "load_module",
    "run_module",
    "__version__",
]

__version__ = "1.0.0"
