"""Diagnostics for the MiniJava++ front-end."""

from __future__ import annotations

from typing import Optional


class SourcePosition:
    """A (line, column) position within a source file."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int):
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"SourcePosition({self.line}, {self.column})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SourcePosition)
                and other.line == self.line and other.column == self.column)


class CompileError(Exception):
    """A diagnosed error in the source program (lexical, syntactic or semantic)."""

    def __init__(self, message: str, pos: Optional[SourcePosition] = None):
        self.message = message
        self.pos = pos
        where = f" at {pos}" if pos else ""
        super().__init__(f"{message}{where}")
