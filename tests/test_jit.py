"""Consumer-side code generation (repro.interp.jit) tests.

The JIT must be observably identical to the interpreter on every
program -- exceptions, dispatch, covariance checks included.
"""

from pathlib import Path

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.interp.interpreter import Interpreter
from repro.interp.jit import JitCompiler
from repro.pipeline import compile_to_module
from tests.conftest import main_wrap


def jit_run(source, main_class=None, optimize=False):
    module = compile_to_module(source, optimize=optimize)
    return JitCompiler(module).run_main(main_class)


@pytest.mark.parametrize("program", CORPUS_PROGRAMS)
def test_jit_matches_interpreter_on_corpus(program):
    source = corpus_source(program)
    module = compile_to_module(source, optimize=True)
    expected = Interpreter(module, max_steps=80_000_000).run_main(program)
    actual = JitCompiler(module).run_main(program)
    assert actual.stdout == expected.stdout
    assert actual.exception_name() == expected.exception_name()


def test_jit_runs_decoded_modules():
    source = corpus_source("BitSieve")
    module = decode_module(encode_module(
        compile_to_module(source, optimize=True)))
    result = JitCompiler(module).run_main("BitSieve")
    assert result.stdout.startswith("primes=2262")


@pytest.mark.parametrize("optimize", [False, True], ids=["plain", "opt"])
@pytest.mark.parametrize("program", CORPUS_PROGRAMS)
def test_jit_on_decoded_artifacts_matches_golden(program, optimize):
    """The consumer-side story end to end: the producer encodes, the
    consumer decodes the wire artifact and JITs it.  Stdout must match
    the pinned golden output byte for byte, for both the plain and the
    optimized artifact."""
    source = corpus_source(program)
    wire = encode_module(compile_to_module(source, optimize=optimize))
    result = JitCompiler(decode_module(wire)).run_main(program)
    golden = Path(__file__).parent / "golden" / f"{program}.out"
    assert result.stdout == golden.read_text()
    assert result.exception_name() is None


@pytest.mark.parametrize("optimize", [False, True], ids=["plain", "opt"])
def test_jit_exception_paths_through_wire(optimize):
    """Interpreter vs JIT on the same decoded artifact where the
    interesting path runs *through* try/finally: the finally body must
    execute, then the uncaught exception must escape identically."""
    src = """
    class Main {
        static int poke(int[] xs, int i) {
            try { xs[i] = 1; return xs[0]; }
            finally { System.out.println("fin " + i); }
        }
        static void main() {
            int[] xs = new int[2];
            System.out.println(poke(xs, 1));
            System.out.println(poke(xs, 5));
        }
    }
    """
    module = decode_module(encode_module(
        compile_to_module(src, optimize=optimize)))
    expected = Interpreter(module).run_main("Main")
    actual = JitCompiler(module).run_main("Main")
    assert actual.stdout == expected.stdout
    assert actual.stdout == "fin 1\n0\nfin 5\n"
    assert actual.exception_name() == expected.exception_name()
    assert actual.exception_name() \
        == "java.lang.ArrayIndexOutOfBoundsException"


class TestJitSemantics:
    def test_arithmetic_wrapping(self):
        result = jit_run(main_wrap(
            "int x = 2147483647; System.out.println(x + 1);"))
        assert result.stdout == "-2147483648\n"

    def test_exception_caught(self):
        result = jit_run(main_wrap(
            "try { int z = 0; int q = 1 / z; }"
            "catch (ArithmeticException e)"
            "{ System.out.println(\"caught \" + e.getMessage()); }"))
        assert result.stdout == "caught / by zero\n"

    def test_exception_propagates(self):
        result = jit_run(main_wrap("String s = null; int n = s.length();"))
        assert result.exception_name() == "java.lang.NullPointerException"

    def test_finally_on_all_paths(self):
        src = """
        class Main {
            static int f(boolean fail) {
                try {
                    if (fail) { int z = 0; return 1 / z; }
                    return 1;
                } finally { System.out.println("fin"); }
            }
            static void main() {
                System.out.println(f(false));
                try { f(true); }
                catch (ArithmeticException e) { System.out.println("top"); }
            }
        }
        """
        result = jit_run(src)
        assert result.stdout == "fin\n1\nfin\ntop\n"

    def test_virtual_dispatch_memoization(self):
        src = """
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
        class Main {
            static void main() {
                A[] xs = new A[6];
                for (int i = 0; i < 6; i++)
                    xs[i] = (i % 2 == 0) ? new A() : new B();
                int total = 0;
                for (int i = 0; i < 6; i++) total += xs[i].f();
                System.out.println(total);
            }
        }
        """
        assert jit_run(src, "Main").stdout == "9\n"

    def test_recursion_between_jitted_functions(self):
        src = """
        class Main {
            static boolean even(int n) { return n == 0 ? true : odd(n - 1); }
            static boolean odd(int n) { return n == 0 ? false : even(n - 1); }
            static void main() { System.out.println(even(101)); }
        }
        """
        assert jit_run(src).stdout == "false\n"

    def test_array_store_check(self):
        src = """
        class A { }
        class B extends A { }
        class Main {
            static void main() {
                A[] arr = new B[1];
                try { arr[0] = new A(); }
                catch (ArrayStoreException e)
                { System.out.println("store"); }
            }
        }
        """
        assert jit_run(src, "Main").stdout == "store\n"

    def test_string_interning_identity(self):
        result = jit_run(main_wrap(
            'String a = "x"; String b = "x";'
            "System.out.println(a == b);"))
        assert result.stdout == "true\n"

    def test_clinit_runs_before_main(self):
        src = ("class Config { static int limit = 17; }"
               "class Main { static void main() "
               "{ System.out.println(Config.limit); } }")
        assert jit_run(src, "Main").stdout == "17\n"

    def test_optimized_module_same_behaviour(self):
        source = corpus_source("Parser")
        plain = jit_run(source, "Parser", optimize=False)
        optimized = jit_run(source, "Parser", optimize=True)
        assert plain.stdout == optimized.stdout


def test_jit_is_faster_than_interpreter():
    import time
    source = corpus_source("BitSieve")
    module = compile_to_module(source, optimize=True)
    start = time.perf_counter()
    Interpreter(module, max_steps=80_000_000).run_main("BitSieve")
    interp_time = time.perf_counter() - start
    jit = JitCompiler(module)
    start = time.perf_counter()
    jit.run_main("BitSieve")
    jit_time = time.perf_counter() - start
    assert jit_time < interp_time, \
        f"jit {jit_time:.3f}s not faster than interp {interp_time:.3f}s"
