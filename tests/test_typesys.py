"""Unit tests for the type system, the world, and the type table."""

import pytest

from repro.typesys.ops import OPS_BY_TYPE, lookup_op, op_by_index
from repro.typesys.table import TypeTable
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    INT,
    LONG,
    NULL,
    PrimitiveType,
    VOID,
    binary_numeric_promotion,
    widens_to,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World


class TestTypes:
    def test_primitives_are_interned(self):
        assert PrimitiveType("int") is INT
        assert PrimitiveType("double") is DOUBLE

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            PrimitiveType("byte")

    def test_array_equality_is_structural(self):
        assert ArrayType(INT) == ArrayType(INT)
        assert ArrayType(INT) != ArrayType(LONG)
        assert hash(ArrayType(INT)) == hash(ArrayType(INT))

    def test_nested_array_descriptor(self):
        assert ArrayType(ArrayType(INT)).descriptor() == "[[I"

    def test_class_descriptor(self):
        assert ClassType("java.lang.String").descriptor() \
            == "Ljava/lang/String;"

    def test_array_of_void_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(VOID)

    def test_widening_chain(self):
        assert widens_to(CHAR, INT)
        assert widens_to(INT, DOUBLE)
        assert widens_to(LONG, DOUBLE)
        assert not widens_to(INT, CHAR)
        assert not widens_to(DOUBLE, LONG)
        assert not widens_to(BOOLEAN, INT)

    def test_binary_promotion(self):
        assert binary_numeric_promotion(INT, LONG) is LONG
        assert binary_numeric_promotion(CHAR, CHAR) is INT
        assert binary_numeric_promotion(LONG, DOUBLE) is DOUBLE
        assert binary_numeric_promotion(BOOLEAN, INT) is None


class TestOperations:
    def test_trapping_classification(self):
        assert lookup_op(INT, "div").traps
        assert lookup_op(INT, "rem").traps
        assert not lookup_op(INT, "add").traps
        # IEEE division never traps (paper Section 5 allows per-language
        # choices; Java floats are lenient)
        assert not lookup_op(DOUBLE, "div").traps

    def test_operation_indices_are_stable_and_dense(self):
        for base, ops in OPS_BY_TYPE.items():
            for index, op in enumerate(ops):
                assert op.index == index
                assert op_by_index(base, index) is op

    def test_op_by_index_out_of_range(self):
        assert op_by_index(INT, 9999) is None

    def test_fold_matches_java(self):
        assert lookup_op(INT, "add").fold(2**31 - 1, 1) == -(2**31)
        assert lookup_op(LONG, "mul").fold(2**62, 4) == 0
        assert lookup_op(INT, "to_char").fold(-1) == 0xFFFF
        assert lookup_op(BOOLEAN, "xor").fold(True, True) is False

    def test_comparison_results_are_boolean(self):
        assert lookup_op(INT, "lt").result is BOOLEAN
        assert lookup_op(DOUBLE, "ge").result is BOOLEAN

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            lookup_op(INT, "frobnicate")


class TestWorld:
    def test_builtins_present(self):
        world = World()
        for name in ("java.lang.Object", "java.lang.String",
                     "java.lang.Throwable",
                     "java.lang.NullPointerException"):
            assert world.lookup(name) is not None

    def test_short_name_resolution(self):
        world = World()
        assert world.lookup("String").name == "java.lang.String"

    def test_define_and_subtype(self):
        world = World()
        animal = world.define_class(ClassInfo("Animal", "java.lang.Object"))
        cat = world.define_class(ClassInfo("Cat", "Animal"))
        world.link()
        assert world.is_subtype(cat.type, animal.type)
        assert not world.is_subtype(animal.type, cat.type)
        assert world.is_subtype(cat.type, ClassType("java.lang.Object"))

    def test_null_is_subtype_of_references_only(self):
        world = World()
        assert world.is_subtype(NULL, ClassType("java.lang.String"))
        assert world.is_subtype(NULL, ArrayType(INT))
        assert not world.is_subtype(NULL, INT)

    def test_arrays_subtype_object_and_covariance(self):
        world = World()
        assert world.is_subtype(ArrayType(INT),
                                ClassType("java.lang.Object"))
        string_array = ArrayType(ClassType("java.lang.String"))
        object_array = ArrayType(ClassType("java.lang.Object"))
        assert world.is_subtype(string_array, object_array)
        assert not world.is_subtype(ArrayType(INT), ArrayType(LONG))

    def test_vtable_override_shares_slot(self):
        world = World()
        base = ClassInfo("Base", "java.lang.Object")
        base_m = base.add_method(MethodInfo("f", [], INT))
        world.define_class(base)
        derived = ClassInfo("Derived", "Base")
        derived_m = derived.add_method(MethodInfo("f", [], INT))
        world.define_class(derived)
        world.link()
        assert base_m.vtable_slot == derived_m.vtable_slot
        assert derived.vtable[derived_m.vtable_slot] is derived_m

    def test_field_slots_include_inherited(self):
        world = World()
        base = ClassInfo("B1", "java.lang.Object")
        base.add_field(FieldInfo("x", INT))
        world.define_class(base)
        derived = ClassInfo("D1", "B1")
        derived.add_field(FieldInfo("y", INT))
        world.define_class(derived)
        world.link()
        assert [f.name for f in derived.all_instance_fields] == ["x", "y"]
        assert derived.find_field("x").slot == 0
        assert derived.find_field("y").slot == 1

    def test_common_supertype(self):
        world = World()
        a = world.define_class(ClassInfo("A2", "java.lang.Object"))
        b = world.define_class(ClassInfo("B2", "A2"))
        c = world.define_class(ClassInfo("C2", "A2"))
        world.link()
        assert world.common_supertype(b.type, c.type) == a.type
        assert world.common_supertype(NULL, b.type) == b.type

    def test_duplicate_class_rejected(self):
        world = World()
        world.define_class(ClassInfo("Dup", "java.lang.Object"))
        from repro.typesys.world import WorldError
        with pytest.raises(WorldError):
            world.define_class(ClassInfo("Dup", "java.lang.Object"))


class TestTypeTable:
    def test_primitives_first(self):
        table = TypeTable(World())
        assert table.type_at(0) is INT
        assert table.type_at(6) is VOID

    def test_builtins_are_implicit(self):
        table = TypeTable(World())
        index = table.index_of(ClassType("java.lang.String"))
        assert table.entries[index].implicit

    def test_declared_classes_are_not_implicit(self):
        world = World()
        info = world.define_class(ClassInfo("Mine", "java.lang.Object"))
        world.link()
        table = TypeTable(world)
        index = table.declare_class(info)
        assert not table.entries[index].implicit
        assert table.declared_entries()[0].type == info.type

    def test_intern_array_recursively(self):
        world = World()
        table = TypeTable(world)
        nested = ArrayType(ArrayType(INT))
        index = table.intern(nested)
        assert table.type_at(index) == nested
        assert ArrayType(INT) in table

    def test_field_table_is_deterministic(self):
        world = World()
        base = ClassInfo("FB", "java.lang.Object")
        base.add_field(FieldInfo("a", INT))
        base.add_field(FieldInfo("s", INT, is_static=True))
        world.define_class(base)
        derived = ClassInfo("FD", "FB")
        derived.add_field(FieldInfo("b", INT))
        world.define_class(derived)
        world.link()
        table = TypeTable(world)
        names = [f.name for f in table.field_table(derived)]
        assert names == ["a", "b", "s"]

    def test_method_table_excludes_super_constructors(self):
        world = World()
        base = ClassInfo("MB", "java.lang.Object")
        base.add_method(MethodInfo("<init>", [], VOID))
        world.define_class(base)
        derived = ClassInfo("MD", "MB")
        derived.add_method(MethodInfo("<init>", [INT], VOID))
        world.define_class(derived)
        world.link()
        table = TypeTable(world)
        ctors = [m for m in table.method_table(derived)
                 if m.is_constructor]
        assert all(m.declaring is derived for m in ctors)

    def test_unknown_type_raises(self):
        from repro.typesys.table import TypeTableError
        table = TypeTable(World())
        with pytest.raises(TypeTableError):
            table.index_of(ClassType("NoSuch"))
        with pytest.raises(TypeTableError):
            table.type_at(10_000)
