"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.pipeline import compile_to_module
from repro.interp.interpreter import Interpreter


def run_java(source: str, *, optimize: bool = False, class_name=None,
             method: str = "main", max_steps: int = 5_000_000):
    """Compile and execute a MiniJava++ program; returns ExecutionResult."""
    module = compile_to_module(source, optimize=optimize)
    interp = Interpreter(module, max_steps=max_steps)
    return interp.run_main(class_name, method)


def stdout_of(source: str, **kwargs) -> str:
    result = run_java(source, **kwargs)
    assert result.exception is None, \
        f"unexpected {result.exception_name()}; stdout so far:\n{result.stdout}"
    return result.stdout


def main_wrap(body: str, extra: str = "") -> str:
    """Wrap statements into a minimal runnable class."""
    return f"class Main {{ {extra}\n static void main() {{\n{body}\n}} }}"


@pytest.fixture
def compile_module():
    return compile_to_module


# ----------------------------------------------------------------------
# serving fixtures: one in-process server on an ephemeral port, with a
# deterministic clock so rate windows and manifest timestamps replay
# identically across runs

#: the signing key every serve fixture publishes under
SERVE_TEST_KEY = b"conformance-suite-key"


@pytest.fixture
def serve_stack():
    """(service, server, clock) with quotas generous enough for the
    conformance suite; quota-specific tests build their own stack."""
    from repro.serve import (ManualClock, ServeServer, ServeService,
                             TenantLimits)
    clock = ManualClock()
    service = ServeService(
        signing_key=SERVE_TEST_KEY, clock=clock,
        limits=TenantLimits(requests_per_window=100_000,
                            stored_bytes=256 * 1024 * 1024,
                            compile_seconds=600.0))
    server = ServeServer(service).start()
    try:
        yield service, server, clock
    finally:
        server.stop()


@pytest.fixture
def serve_client(serve_stack):
    """A connected client for the shared in-process server."""
    from repro.serve import ServeClient
    _service, server, _clock = serve_stack
    client = ServeClient("127.0.0.1", server.port, tenant="test")
    try:
        yield client
    finally:
        client.close()  # drain the keep-alive pool before server stop
