"""Producer-side optimisation pipeline (paper Section 8).

Default order: constant propagation, CSE (with check elimination over the
``Mem``-threaded memory dependence), dead-code elimination, then
exception-edge cleanup.  Each pass can be toggled for the ablation study
(experiment E4)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.opt.cleanup import remove_dead_handlers, \
    remove_stale_exception_edges
from repro.opt.constprop import run_constprop
from repro.opt.cse import run_cse
from repro.opt.dce import run_dce
from repro.opt.safephi import run_safe_phi_propagation

ALL_PASSES = ("constprop", "safephi", "cse", "dce")


def optimize_function(function, passes: Optional[Iterable[str]] = None) -> dict:
    """Run the selected passes on one function; returns statistics."""
    selected = tuple(passes) if passes is not None else ALL_PASSES
    stats: dict = {"function": function.name}
    if "constprop" in selected:
        stats["constprop_folded"] = run_constprop(function)
    if "safephi" in selected:
        stats["safephi_promoted"] = run_safe_phi_propagation(function)
    if "cse" in selected or "cse_fields" in selected:
        cse_stats = run_cse(function,
                            partition_memory="cse_fields" in selected)
        stats.update({f"cse_{k}": v for k, v in cse_stats.as_dict().items()})
    if "dce" in selected:
        stats["dce_removed"] = run_dce(function)
    stats["stale_exc_edges"] = remove_stale_exception_edges(function)
    stats["dead_handlers"] = remove_dead_handlers(function)
    return stats


def optimize_module(module, passes: Optional[Iterable[str]] = None) -> list[dict]:
    """Optimise every function of a module; returns per-function stats."""
    return [optimize_function(function, passes)
            for function in module.functions.values()]
