"""CLI smoke tests (repro-cc)."""

import pytest

from repro.cli import main


SOURCE = """
class Hello {
    static void main() {
        int total = 0;
        for (int i = 0; i < 5; i++) total += i;
        System.out.println("total=" + total);
    }
}
"""


@pytest.fixture
def java_file(tmp_path):
    path = tmp_path / "Hello.java"
    path.write_text(SOURCE)
    return str(path)


def test_compile_and_verify(java_file, tmp_path, capsys):
    out = str(tmp_path / "Hello.stsa")
    assert main(["compile", java_file, "-o", out, "--optimize"]) == 0
    assert main(["verify", out]) == 0
    captured = capsys.readouterr().out
    assert "OK" in captured


def test_run_source(java_file, capsys):
    assert main(["run", java_file]) == 0
    assert capsys.readouterr().out == "total=10\n"


def test_run_compiled(java_file, tmp_path, capsys):
    out = str(tmp_path / "Hello.stsa")
    main(["compile", java_file, "-o", out])
    capsys.readouterr()
    assert main(["run", out]) == 0
    assert capsys.readouterr().out == "total=10\n"


def test_run_exit_code_on_exception(tmp_path, capsys):
    path = tmp_path / "Boom.java"
    path.write_text("class Boom { static void main() "
                    "{ int z = 0; int x = 1 / z; } }")
    assert main(["run", str(path)]) == 1
    assert "ArithmeticException" in capsys.readouterr().err


def test_disasm(java_file, capsys):
    assert main(["disasm", java_file]) == 0
    out = capsys.readouterr().out
    assert "function Hello.main()" in out
    assert "phi" in out or "primitive" in out


def test_verify_rejects_corrupt_file(tmp_path, capsys):
    path = tmp_path / "bad.stsa"
    path.write_bytes(b"STSA1" + b"\xff" * 32)
    assert main(["verify", str(path)]) == 1
    assert "REJECTED" in capsys.readouterr().out


def test_stats(java_file, capsys):
    assert main(["stats", java_file]) == 0
    out = capsys.readouterr().out
    assert "file size" in out and "Null-Checks" in out
