"""Type system: Java-like type hierarchy and the SafeTSA type table.

The SafeTSA machine model gives every type its own *register plane*
(Section 3 of the paper).  The plane structure is derived from the
:class:`~repro.typesys.table.TypeTable`, most of whose entries (primitive
types, imported host types) are generated implicitly and are therefore
tamper-proof (Section 4).
"""

from repro.typesys.types import (
    ArrayType,
    ClassType,
    NullType,
    PrimitiveType,
    Type,
    BOOLEAN,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    NULL,
    VOID,
)
from repro.typesys.world import (
    ClassInfo,
    FieldInfo,
    MethodInfo,
    World,
)
from repro.typesys.ops import Operation, OPS_BY_TYPE, lookup_op
from repro.typesys.table import TypeTable, TypeEntry

__all__ = [
    "ArrayType",
    "ClassType",
    "NullType",
    "PrimitiveType",
    "Type",
    "BOOLEAN",
    "CHAR",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "NULL",
    "VOID",
    "ClassInfo",
    "FieldInfo",
    "MethodInfo",
    "World",
    "Operation",
    "OPS_BY_TYPE",
    "lookup_op",
    "TypeTable",
    "TypeEntry",
]
