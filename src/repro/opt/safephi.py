"""Safety propagation across phi-joins (paper Section 4).

"The beauty of this approach is that it enables the transport of
null-checked and index-checked values across phi-joins."  Construction
places variable phis on the unsafe ``ref`` planes (a variable's declared
type); when every value reaching such a phi -- through arbitrarily nested
phi cycles -- is a downcast of an intrinsically safe value (an
allocation, ``this``, a caught exception, or an already-null-checked
value), the merged value is provably non-null, so the phi can live on the
``safe-ref`` plane.  Null checks of the phi's value then fall to ordinary
check elimination.

Example::

    Node n = new Node();            // safe origin
    while (...) {
        use(n.field);               // nullcheck(phi) -- removable
        if (...) n = new Node();    // safe origin again
    }

Loop-header phis and their feeding join phis form cycles, so eligibility
is computed optimistically over the whole candidate set (greatest
fixpoint): start from all ref phis and discard any whose operand is
neither a safe origin nor another surviving candidate.
"""

from __future__ import annotations

from typing import Optional

from repro.ssa.ir import Downcast, Function, Instr, Phi, Plane


def _chain_base(value: Instr) -> Instr:
    """Strip downcast chains."""
    while isinstance(value, Downcast):
        value = value.operands[0]
    return value


def _safe_origin(value: Instr) -> Optional[Instr]:
    base = _chain_base(value)
    if base.plane is not None and base.plane.kind == "safe":
        return base
    return None


def _insertion_point(home, origin) -> Optional[int]:
    """Index in ``home.instrs`` where a cast of ``origin`` may go, or None
    when no spot preserves both dominance and the trapping-tail discipline
    of try subblocks."""
    if origin in home.instrs:
        index = home.instrs.index(origin) + 1
    else:
        index = 0  # origin is a phi/param defined before all instrs
    tail_traps = bool(home.instrs) and home.instrs[-1].traps
    if tail_traps and index > len(home.instrs) - 1:
        return None  # would displace the subblock's exception point
    return index


def run_safe_phi_propagation(function: Function) -> int:
    """Promote provably-non-null ref phis to safe planes; returns the
    number of promoted phis."""
    # Insertion-ordered (block order, phi order within a block), not a
    # set: the commit loop below inserts compensating casts while
    # iterating, and a hash-ordered walk over Phi objects would make
    # the emitted instruction order — and hence the wire bytes — depend
    # on heap addresses.
    candidates: dict[Phi, None] = {}
    for block in function.reachable_blocks():
        for phi in block.phis:
            if phi.plane.kind == "ref":
                candidates[phi] = None

    # greatest fixpoint: discard phis with any unsafe incoming value
    changed = True
    while changed:
        changed = False
        for phi in list(candidates):
            for operand in phi.operands:
                base = _chain_base(operand)
                if base is phi:
                    continue  # self loop through the back edge
                if isinstance(base, Phi) and base in candidates:
                    continue
                if _safe_origin(operand) is not None:
                    continue
                candidates.pop(phi, None)
                changed = True
                break

    if not candidates:
        return 0

    # validate widening-cast placements before mutating anything
    plans: dict[Phi, list] = {}
    for phi in list(candidates):
        plan = _plan_for(phi, candidates)
        if plan is None:
            # placement impossible: drop and restart the fixpoint
            candidates.pop(phi, None)
            return run_safe_phi_propagation(function) if candidates \
                else 0
        plans[phi] = plan

    # commit: change planes and give existing users a compensating cast
    for phi in candidates:
        ref_plane = phi.plane
        compensation = Downcast(ref_plane, phi)
        compensation.block = phi.block
        phi.replace_all_uses(compensation)
        compensation.set_operand(0, phi)
        phi.block.instrs.insert(0, compensation)
        phi.plane = Plane.safe(ref_plane.type)

    # rewire operands per the precomputed plans
    for phi, plan in plans.items():
        safe_plane = phi.plane
        for index, action in plan:
            if action[0] == "direct":
                phi.set_operand(index, action[1])
            elif action[0] == "self":
                phi.set_operand(index, phi)
            else:  # ("cast", base, home)
                _tag, base, home = action
                cast = Downcast(safe_plane, base)
                cast.block = home
                position = _insertion_point(home, base)
                assert position is not None
                home.instrs.insert(position, cast)
                phi.set_operand(index, cast)
    return len(candidates)


def _plan_for(phi: Phi, candidates) -> Optional[list]:
    safe_plane = Plane.safe(phi.plane.type)
    plan = []
    for index, operand in enumerate(phi.operands):
        base = _chain_base(operand)
        if base is phi:
            plan.append((index, ("self",)))
            continue
        if isinstance(base, Phi) and base in candidates:
            base_safe = Plane.safe(base.plane.type)
            if base_safe == safe_plane:
                plan.append((index, ("direct", base)))
            else:
                # widening cast placed at the head of the base's block
                plan.append((index, ("cast", base, base.block)))
            continue
        origin = _safe_origin(operand)
        assert origin is not None  # guaranteed by the fixpoint
        if origin.plane == safe_plane:
            plan.append((index, ("direct", origin)))
            continue
        home = origin.block if origin.block is not None else phi.block
        if _insertion_point(home, origin) is None:
            return None
        plan.append((index, ("cast", origin, home)))
    return plan
