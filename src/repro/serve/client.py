"""The auditing client: HTTP access plus client-side verification.

A SafeTSA consumer never extends trust to the distribution channel --
the loader re-verifies every byte it decodes.  :class:`ServeClient`
applies the same posture to serving metadata: ``fetch`` re-hashes the
returned bytes against the requested digest (a store that serves the
wrong bytes is detected, not believed), and ``audit`` replays the
publish log through :func:`repro.serve.log.audit_chain` locally --
chain linkage, dense sequence numbers, manifest shape, and (given the
publisher key) manifest signatures are all checked on the client's own
CPU.  A server that edits a historical entry or splices the chain
fails the client's audit even though every individual response it sent
was well-formed JSON.

Server-side rejections arrive as the stable error envelope and are
re-raised as :class:`~repro.serve.errors.ServeError`, so client code
handles local and remote failures through one exception type with one
code taxonomy.

Transport is a small keep-alive connection pool over stdlib
``http.client``: idle connections are reused across requests (HTTP/1.1
persistent connections), checked out under a lock so the client stays
thread-safe -- the conformance suite and the benchmark both hammer one
server from many threads.  A connection that went stale while idle
(server restarted, keep-alive timeout) is discarded and the request
retried once on a fresh connection; ``keep_alive=False`` restores the
old one-connection-per-request behaviour.
"""

from __future__ import annotations

import hashlib
import base64
import json
import threading
from http.client import BadStatusLine, HTTPConnection, ResponseNotReady
from typing import Optional

from repro.serve.errors import ServeError
from repro.serve.log import GENESIS, audit_chain
from repro.serve.store import wire_digest


class ServeClient:
    """A blocking JSON client for one ``repro.serve`` endpoint set."""

    #: idle connections kept per client; excess connections (transient
    #: thread bursts) are closed on release rather than pooled
    POOL_SIZE = 8

    def __init__(self, host: str, port: int, *,
                 tenant: str = "public", timeout: float = 30.0,
                 keep_alive: bool = True):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._lock = threading.Lock()
        self._idle: list[HTTPConnection] = []

    @classmethod
    def for_url(cls, url: str, **kwargs) -> "ServeClient":
        from urllib.parse import urlsplit
        parts = urlsplit(url)
        return cls(parts.hostname or "127.0.0.1", parts.port or 80,
                   **kwargs)

    # -- transport ------------------------------------------------------

    def _checkout(self) -> tuple[HTTPConnection, bool]:
        """An idle pooled connection (``reused=True``) or a fresh one."""
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        return HTTPConnection(self.host, self.port,
                              timeout=self.timeout), False

    def _release(self, conn: HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < self.POOL_SIZE:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        """Close every idle pooled connection."""
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str,
                payload: Optional[dict] = None) -> dict:
        """One round trip; error envelopes re-raise as ServeError."""
        body = None
        headers = {} if self.keep_alive else {"Connection": "close"}
        if payload is not None:
            payload = dict(payload)
            payload.setdefault("tenant", self.tenant)
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        elif method.upper() == "GET" and "tenant=" not in path:
            sep = "&" if "?" in path else "?"
            path = f"{path}{sep}tenant={self.tenant}"
        if not self.keep_alive:
            conn = HTTPConnection(self.host, self.port,
                                  timeout=self.timeout)
            try:
                data = self._round_trip(conn, method, path, body,
                                        headers)
            finally:
                conn.close()
        else:
            conn, reused = self._checkout()
            try:
                data = self._round_trip(conn, method, path, body,
                                        headers)
            except (BadStatusLine, ResponseNotReady, ConnectionError,
                    BrokenPipeError, OSError):
                # a pooled connection can go stale while idle; retry
                # exactly once on a fresh connection.  A fresh
                # connection's failure is genuine and propagates.
                conn.close()
                if not reused:
                    raise
                conn = HTTPConnection(self.host, self.port,
                                      timeout=self.timeout)
                try:
                    data = self._round_trip(conn, method, path, body,
                                            headers)
                except BaseException:
                    conn.close()
                    raise
            except BaseException:
                conn.close()
                raise
            self._release(conn)
        if "error" in data:
            raise ServeError.from_payload(data)
        return data

    @staticmethod
    def _round_trip(conn: HTTPConnection, method: str, path: str,
                    body: Optional[bytes], headers: dict) -> dict:
        conn.request(method.upper(), path, body=body, headers=headers)
        response = conn.getresponse()
        payload = response.read().decode("utf-8")
        if response.will_close:
            conn.close()
        return json.loads(payload)

    # -- endpoint wrappers ----------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")

    def compile(self, source: str, *, optimize: bool = False,
                passes: Optional[str] = None, wire_v2: bool = False,
                return_bytes: bool = False) -> dict:
        payload = {"source": source, "optimize": optimize,
                   "wire_v2": wire_v2, "return_bytes": return_bytes}
        if passes is not None:
            payload["passes"] = passes
        result = self.request("POST", "/v1/compile", payload)
        if return_bytes:
            result["wire"] = base64.b64decode(result.pop("wire_b64"))
        return result

    def publish(self, name: str, *, source: Optional[str] = None,
                wire: Optional[bytes] = None, optimize: bool = False,
                passes: Optional[str] = None,
                wire_v2: bool = False) -> dict:
        payload: dict = {"name": name}
        if wire is not None:
            payload["wire_b64"] = \
                base64.b64encode(wire).decode("ascii")
        elif source is not None:
            payload.update(source=source, optimize=optimize,
                           wire_v2=wire_v2)
            if passes is not None:
                payload["passes"] = passes
        else:
            raise ValueError("publish needs source or wire")
        return self.request("POST", "/v1/publish", payload)

    def publish_batch(self, modules: list, *,
                      wire_v2: bool = True) -> dict:
        return self.request("POST", "/v1/publish",
                            {"modules": modules, "wire_v2": wire_v2})

    def fetch(self, digest: str) -> bytes:
        """Fetch a module and *re-verify* its content address -- bytes
        that do not hash to the requested digest are refused."""
        result = self.request("GET", f"/v1/fetch/{digest}")
        wire = base64.b64decode(result["wire_b64"])
        if wire_digest(wire) != digest:
            raise ServeError(
                f"fetched bytes hash to {wire_digest(wire)[:16]}..., "
                f"not the requested {digest[:16]}...", "SERVE-CHAIN",
                {"requested": digest, "received": wire_digest(wire)})
        return wire

    def fetch_dictionary(self, digest: str) -> bytes:
        result = self.request("GET", f"/v1/dict/{digest}")
        blob = base64.b64decode(result["blob_b64"])
        if hashlib.sha256(blob).hexdigest() != digest:
            raise ServeError(
                f"dictionary bytes do not hash to {digest[:16]}...",
                "SERVE-CHAIN", {"requested": digest})
        return blob

    def verify(self, *, digest: Optional[str] = None,
               wire: Optional[bytes] = None) -> dict:
        return self.request("POST", "/v1/verify",
                            self._unit(digest, wire))

    def run(self, *, digest: Optional[str] = None,
            wire: Optional[bytes] = None,
            class_name: Optional[str] = None,
            max_steps: Optional[int] = None,
            trace=None) -> dict:
        """``trace=True`` (or an int threshold) executes through the
        server's speculative trace tier; the response then carries the
        run's trace statistics under ``"trace"``."""
        payload = self._unit(digest, wire)
        if class_name is not None:
            payload["class"] = class_name
        if max_steps is not None:
            payload["max_steps"] = max_steps
        if trace is not None:
            payload["trace"] = trace
        return self.request("POST", "/v1/run", payload)

    @staticmethod
    def _unit(digest: Optional[str], wire: Optional[bytes]) -> dict:
        if digest is not None:
            return {"digest": digest}
        if wire is not None:
            return {"wire_b64": base64.b64encode(wire).decode("ascii")}
        raise ValueError("need digest or wire")

    # -- the audit path -------------------------------------------------

    def log_entries(self, since: int = 0) -> dict:
        return self.request("GET", f"/v1/log?since={since}")

    def audit(self, *, key: Optional[bytes] = None,
              expect_head: Optional[str] = None) -> str:
        """Fetch the full log and audit it locally; returns the head.

        The server's claimed head must equal the head *recomputed from
        the entries* -- a server cannot assert one history and serve
        another.  With ``key``, manifest signatures are checked too;
        with ``expect_head`` (a previously pinned head), any rewrite of
        already-seen history raises ``SERVE-CHAIN``.
        """
        result = self.log_entries(0)
        head = audit_chain(result["entries"], key=key)
        if head != result.get("head", GENESIS):
            raise ServeError(
                "server-claimed head does not match the entries it "
                "served", "SERVE-CHAIN",
                {"claimed": result.get("head"), "recomputed": head})
        if expect_head is not None and expect_head != GENESIS:
            # a pinned head must still be *reachable*: some prefix of
            # the served (already chain-valid) entries must hash to it
            from repro.serve.log import entry_hash
            prefix_heads = [entry_hash(entry)
                            for entry in result["entries"]]
            if expect_head not in prefix_heads:
                raise ServeError(
                    "pinned head is not on the served chain -- "
                    "history was rewritten", "SERVE-CHAIN",
                    {"pinned": expect_head,
                     "claimed": result.get("head")})
        return head
