"""Abstract syntax tree produced by the parser and annotated by semantics.

Every expression node gains a ``type`` attribute during semantic analysis;
name-shaped nodes are resolved into the variants the UAST builder consumes
(``LocalRead``, ``FieldRead``, ...).
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.errors import SourcePosition
from repro.typesys.types import Type


class Node:
    """Base class of all AST nodes."""

    __slots__ = ("pos",)

    def __init__(self, pos: Optional[SourcePosition] = None):
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}>"


# ----------------------------------------------------------------------
# type references (syntactic; resolved to repro.typesys Types by semantics)

class TypeRef(Node):
    __slots__ = ()


class PrimTypeRef(TypeRef):
    __slots__ = ("name",)

    def __init__(self, name: str, pos=None):
        super().__init__(pos)
        self.name = name


class NamedTypeRef(TypeRef):
    __slots__ = ("name",)

    def __init__(self, name: str, pos=None):
        super().__init__(pos)
        self.name = name


class ArrayTypeRef(TypeRef):
    __slots__ = ("element",)

    def __init__(self, element: TypeRef, pos=None):
        super().__init__(pos)
        self.element = element


# ----------------------------------------------------------------------
# declarations

class CompilationUnit(Node):
    __slots__ = ("classes", "package")

    def __init__(self, classes: list["ClassDecl"], package: Optional[str] = None):
        super().__init__(None)
        self.classes = classes
        self.package = package


class ClassDecl(Node):
    __slots__ = ("name", "super_name", "members", "is_abstract", "info")

    def __init__(self, name: str, super_name: Optional[str],
                 members: list[Node], is_abstract: bool = False, pos=None):
        super().__init__(pos)
        self.name = name
        self.super_name = super_name
        self.members = members
        self.is_abstract = is_abstract
        self.info = None  # ClassInfo, filled by semantics


class FieldDecl(Node):
    __slots__ = ("type_ref", "name", "init", "is_static", "is_final", "field")

    def __init__(self, type_ref: TypeRef, name: str, init: Optional["Expr"],
                 is_static: bool, is_final: bool, pos=None):
        super().__init__(pos)
        self.type_ref = type_ref
        self.name = name
        self.init = init
        self.is_static = is_static
        self.is_final = is_final
        self.field = None  # FieldInfo


class Param(Node):
    __slots__ = ("type_ref", "name", "local")

    def __init__(self, type_ref: TypeRef, name: str, pos=None):
        super().__init__(pos)
        self.type_ref = type_ref
        self.name = name
        self.local = None  # LocalVar


class MethodDecl(Node):
    __slots__ = ("name", "params", "return_ref", "body", "is_static",
                 "is_abstract", "is_constructor", "throws", "method")

    def __init__(self, name: str, params: list[Param],
                 return_ref: Optional[TypeRef], body: Optional["Block"],
                 is_static: bool, is_abstract: bool, is_constructor: bool,
                 throws: list[str], pos=None):
        super().__init__(pos)
        self.name = name
        self.params = params
        self.return_ref = return_ref
        self.body = body
        self.is_static = is_static
        self.is_abstract = is_abstract
        self.is_constructor = is_constructor
        self.throws = throws
        self.method = None  # MethodInfo


# ----------------------------------------------------------------------
# statements

class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: list[Stmt], pos=None):
        super().__init__(pos)
        self.stmts = stmts


class LocalVarDecl(Stmt):
    __slots__ = ("type_ref", "declarators")

    def __init__(self, type_ref: TypeRef,
                 declarators: list[tuple[str, Optional["Expr"]]], pos=None):
        super().__init__(pos)
        self.type_ref = type_ref
        #: after semantics each entry is (LocalVar, init-expr-or-None)
        self.declarators = declarators


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: "Expr", pos=None):
        super().__init__(pos)
        self.expr = expr


class IfStmt(Stmt):
    __slots__ = ("cond", "then_stmt", "else_stmt")

    def __init__(self, cond: "Expr", then_stmt: Stmt,
                 else_stmt: Optional[Stmt], pos=None):
        super().__init__(pos)
        self.cond = cond
        self.then_stmt = then_stmt
        self.else_stmt = else_stmt


class WhileStmt(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: "Expr", body: Stmt, pos=None):
        super().__init__(pos)
        self.cond = cond
        self.body = body


class DoWhileStmt(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body: Stmt, cond: "Expr", pos=None):
        super().__init__(pos)
        self.body = body
        self.cond = cond


class ForStmt(Stmt):
    __slots__ = ("init", "cond", "update", "body")

    def __init__(self, init: list[Stmt], cond: Optional["Expr"],
                 update: list["Expr"], body: Stmt, pos=None):
        super().__init__(pos)
        self.init = init
        self.cond = cond
        self.update = update
        self.body = body


class BreakStmt(Stmt):
    __slots__ = ("label",)

    def __init__(self, label: Optional[str], pos=None):
        super().__init__(pos)
        self.label = label


class ContinueStmt(Stmt):
    __slots__ = ("label",)

    def __init__(self, label: Optional[str], pos=None):
        super().__init__(pos)
        self.label = label


class ReturnStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Optional["Expr"], pos=None):
        super().__init__(pos)
        self.expr = expr


class ThrowStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: "Expr", pos=None):
        super().__init__(pos)
        self.expr = expr


class CatchClause(Node):
    __slots__ = ("type_ref", "name", "body", "local", "catch_type")

    def __init__(self, type_ref: TypeRef, name: str, body: Block, pos=None):
        super().__init__(pos)
        self.type_ref = type_ref
        self.name = name
        self.body = body
        self.local = None       # LocalVar
        self.catch_type = None  # ClassType


class TryStmt(Stmt):
    __slots__ = ("body", "catches", "finally_block")

    def __init__(self, body: Block, catches: list[CatchClause],
                 finally_block: Optional[Block], pos=None):
        super().__init__(pos)
        self.body = body
        self.catches = catches
        self.finally_block = finally_block


class SwitchCase(Node):
    __slots__ = ("labels", "is_default", "stmts")

    def __init__(self, labels: list["Expr"], is_default: bool,
                 stmts: list[Stmt], pos=None):
        super().__init__(pos)
        self.labels = labels
        self.is_default = is_default
        self.stmts = stmts


class SwitchStmt(Stmt):
    __slots__ = ("selector", "cases")

    def __init__(self, selector: "Expr", cases: list[SwitchCase], pos=None):
        super().__init__(pos)
        self.selector = selector
        self.cases = cases


class LabeledStmt(Stmt):
    __slots__ = ("label", "stmt")

    def __init__(self, label: str, stmt: Stmt, pos=None):
        super().__init__(pos)
        self.label = label
        self.stmt = stmt


class EmptyStmt(Stmt):
    __slots__ = ()


# ----------------------------------------------------------------------
# expressions

class Expr(Node):
    __slots__ = ("type",)

    def __init__(self, pos=None):
        super().__init__(pos)
        self.type: Optional[Type] = None


class Literal(Expr):
    """kind: 'int' | 'long' | 'float' | 'double' | 'char' | 'string'
    | 'boolean' | 'null'"""

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: object, pos=None):
        super().__init__(pos)
        self.kind = kind
        self.value = value


class Name(Expr):
    """An unresolved simple name (resolved by semantics)."""

    __slots__ = ("ident",)

    def __init__(self, ident: str, pos=None):
        super().__init__(pos)
        self.ident = ident


class LocalRead(Expr):
    __slots__ = ("local",)

    def __init__(self, local, pos=None):
        super().__init__(pos)
        self.local = local


class FieldAccess(Expr):
    """``target.name`` with an expression target (resolved: field set)."""

    __slots__ = ("target", "name", "field", "static_class")

    def __init__(self, target: Optional[Expr], name: str, pos=None):
        super().__init__(pos)
        self.target = target
        self.name = name
        self.field = None        # FieldInfo after resolution
        self.static_class = None  # ClassInfo when a static access


class ArrayLength(Expr):
    __slots__ = ("target",)

    def __init__(self, target: Expr, pos=None):
        super().__init__(pos)
        self.target = target


class ArrayAccess(Expr):
    __slots__ = ("array", "index")

    def __init__(self, array: Expr, index: Expr, pos=None):
        super().__init__(pos)
        self.array = array
        self.index = index


class Call(Expr):
    """``target.name(args)``; ``target`` may be None (implicit this/static),
    an expression, a resolved class (static call) or 'super'."""

    __slots__ = ("target", "name", "args", "method", "static_class",
                 "is_super")

    def __init__(self, target: Optional[Expr], name: str, args: list[Expr],
                 is_super: bool = False, pos=None):
        super().__init__(pos)
        self.target = target
        self.name = name
        self.args = args
        self.method = None        # MethodInfo after overload resolution
        self.static_class = None  # ClassInfo for static calls
        self.is_super = is_super


class CtorCall(Expr):
    """Explicit ``this(...)`` or ``super(...)`` constructor invocation."""

    __slots__ = ("is_super", "args", "method")

    def __init__(self, is_super: bool, args: list[Expr], pos=None):
        super().__init__(pos)
        self.is_super = is_super
        self.args = args
        self.method = None


class New(Expr):
    __slots__ = ("type_ref", "args", "method", "class_info")

    def __init__(self, type_ref: TypeRef, args: list[Expr], pos=None):
        super().__init__(pos)
        self.type_ref = type_ref
        self.args = args
        self.method = None      # constructor MethodInfo
        self.class_info = None  # ClassInfo


class NewArray(Expr):
    """``new elem[d0][d1]...[]*`` -- ``dims`` are the sized dimensions."""

    __slots__ = ("elem_ref", "dims", "extra_dims")

    def __init__(self, elem_ref: TypeRef, dims: list[Expr], extra_dims: int,
                 pos=None):
        super().__init__(pos)
        self.elem_ref = elem_ref
        self.dims = dims
        self.extra_dims = extra_dims


class Unary(Expr):
    """op in '-', '!', '~', '+'"""

    __slots__ = ("op", "operand", "operation")

    def __init__(self, op: str, operand: Expr, pos=None):
        super().__init__(pos)
        self.op = op
        self.operand = operand
        self.operation = None


class IncDec(Expr):
    """Pre/post increment/decrement: ``op`` is '++' or '--'."""

    __slots__ = ("op", "target", "is_prefix", "operation")

    def __init__(self, op: str, target: Expr, is_prefix: bool, pos=None):
        super().__init__(pos)
        self.op = op
        self.target = target
        self.is_prefix = is_prefix
        self.operation = None


class Binary(Expr):
    __slots__ = ("op", "left", "right", "operation", "is_string_concat",
                 "is_ref_compare", "compare_type")

    def __init__(self, op: str, left: Expr, right: Expr, pos=None):
        super().__init__(pos)
        self.op = op
        self.left = left
        self.right = right
        self.operation = None        # Operation for primitive ops
        self.is_string_concat = False
        self.is_ref_compare = False
        self.compare_type = None     # common supertype for ref ==/!=


class Assign(Expr):
    """``target op value`` where op is '=', '+=', '-=' etc."""

    __slots__ = ("target", "op", "value", "operation", "is_string_concat",
                 "narrowing_ops")

    def __init__(self, target: Expr, op: str, value: Expr, pos=None):
        super().__init__(pos)
        self.target = target
        self.op = op
        self.value = value
        self.operation = None         # Operation for compound assignments
        self.is_string_concat = False
        self.narrowing_ops = []       # implicit narrowing back to the target


class Ternary(Expr):
    __slots__ = ("cond", "then_expr", "else_expr")

    def __init__(self, cond: Expr, then_expr: Expr, else_expr: Expr, pos=None):
        super().__init__(pos)
        self.cond = cond
        self.then_expr = then_expr
        self.else_expr = else_expr


class Cast(Expr):
    __slots__ = ("type_ref", "operand", "target_type", "cast_kind",
                 "convert_ops")

    def __init__(self, type_ref: TypeRef, operand: Expr, pos=None):
        super().__init__(pos)
        self.type_ref = type_ref
        self.operand = operand
        self.target_type = None
        #: 'identity' | 'numeric' | 'widen_ref' | 'checked'
        self.cast_kind = None
        self.convert_ops = []


class Convert(Expr):
    """Synthetic implicit conversion inserted by semantic analysis."""

    __slots__ = ("operand", "ops")

    def __init__(self, operand: Expr, to: Type, ops=None):
        super().__init__(operand.pos)
        self.operand = operand
        self.type = to
        self.ops = ops or []


class InstanceOf(Expr):
    __slots__ = ("operand", "type_ref", "target_type")

    def __init__(self, operand: Expr, type_ref: TypeRef, pos=None):
        super().__init__(pos)
        self.operand = operand
        self.type_ref = type_ref
        self.target_type = None


class This(Expr):
    __slots__ = ()


class LocalVar:
    """A declared local variable or parameter (semantic object, not a node)."""

    __slots__ = ("name", "type", "index", "is_param", "is_synthetic",
                 "is_this")

    def __init__(self, name: str, type: Type, index: int,
                 is_param: bool = False, is_synthetic: bool = False,
                 is_this: bool = False):
        self.name = name
        self.type = type
        self.index = index
        self.is_param = is_param
        self.is_synthetic = is_synthetic
        #: the receiver pseudo-variable: read-only and intrinsically
        #: non-null, so it lives on the safe-ref plane
        self.is_this = is_this

    def __repr__(self) -> str:  # pragma: no cover
        return f"<local {self.name}: {self.type}>"
