"""Walking a program through the paper's own figures.

Takes a conditional fragment like the one in the paper's Figure 1 /
Appendix B and shows the stages:

1. the type-separated, reference-secure SafeTSA form in the paper's
   (l-r) register notation (Figures 4 and 9);
2. why the Figure 1 attack (referencing a value from the untaken branch)
   has no encoding;
3. the actual transmitted bits.

Run with:  python examples/paper_walkthrough.py
"""

from repro.encode.serializer import encode_module
from repro.pipeline import compile_to_module
from repro.ssa.printer import format_function
from repro.tsa.disasm import format_function_lr
from repro.tsa.layout import FunctionLayout, LayoutError

# the shape of the paper's running example: two values produced on
# different branches, merged by a phi, used after the join
SOURCE = """
class Fragment {
    static int compute(boolean p, int i, int j) {
        int x;
        if (p) {
            x = i + j;      // value (10) in Figure 1's numbering
        } else {
            x = i - j;      // value (11)
        }
        return x * 2;       // uses the phi (12)
    }
}
"""


def main() -> None:
    module = compile_to_module(SOURCE)
    function = module.function_named("Fragment", "compute")

    print("=== SSA form (global value numbering, like Figure 1) ===")
    print(format_function(function))

    print()
    print("=== SafeTSA form: type-separated register planes with")
    print("=== dominator-relative (l-r) references (Figures 4/9) ===")
    print(format_function_lr(function))

    print()
    print("=== the Figure 1 attack is unrepresentable ===")
    layout = FunctionLayout(function)
    then_block = next(b for b in function.blocks
                      for i in b.instrs
                      if i.opcode == "primitive"
                      and i.operation.name == "add")
    add_value = next(i for i in then_block.instrs
                     if i.opcode == "primitive"
                     and i.operation.name == "add")
    join = next(b for b in function.blocks if b.phis)
    print(f"value (10) is the int.add in B{then_block.id}; "
          f"the join is B{join.id}")
    try:
        layout.ref_of(join, add_value)
        print("!! the attack had an encoding (must never happen)")
    except LayoutError as error:
        print(f"encoding it from the join raises: {error}")
    level, register = layout.ref_of(then_block, add_value)
    print(f"(from its own branch it is simply ({level}-{register}))")

    print()
    wire = encode_module(module)
    print(f"=== transmitted: {len(wire)} bytes "
          f"({module.instruction_count()} instructions, "
          "every reference alphabet-bounded) ===")
    print(wire.hex())


if __name__ == "__main__":
    main()
