"""Stress tests: deep nesting, many locals, large methods, edge shapes."""

import pytest

from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.interp.interpreter import Interpreter
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module


def run_full_pipeline(source, main_class, expect):
    for optimize in (False, True):
        module = compile_to_module(source, optimize=optimize)
        verify_module(module)
        decoded = decode_module(encode_module(module))
        result = Interpreter(decoded, max_steps=80_000_000) \
            .run_main(main_class)
        assert result.exception is None, result.exception_name()
        assert result.stdout == expect, (optimize, result.stdout)


def test_deeply_nested_ifs():
    depth = 18
    body = "int x = 0;\n"
    for i in range(depth):
        body += f"if (n > {i}) {{ x = x + {i + 1};\n"
    body += "x = x * 2;\n" + "}" * depth + "\nSystem.out.println(x);"
    source = (f"class Deep {{ static void main() {{ int n = 10;\n{body}\n"
              "} }")
    # n = 10: conditions 0..9 true; the innermost doubling happens at
    # depth 10 where the chain stops
    expected_x = sum(range(1, 11))
    run_full_pipeline(source, "Deep", f"{expected_x}\n")


def test_deeply_nested_loops():
    depth = 8
    open_loops = "".join(
        f"for (int i{k} = 0; i{k} < 2; i{k}++) {{\n" for k in range(depth))
    source = ("class Nest { static void main() { int count = 0;\n"
              + open_loops + "count++;\n" + "}" * depth
              + "\nSystem.out.println(count); } }")
    run_full_pipeline(source, "Nest", f"{2 ** depth}\n")


def test_many_locals_and_phis():
    names = [f"v{i}" for i in range(40)]
    decls = "".join(f"int {n} = {i};\n" for i, n in enumerate(names))
    updates = "".join(f"{n} = {n} + 1;\n" for n in names)
    total = " + ".join(names)
    source = ("class Many { static void main() {\n" + decls
              + "for (int r = 0; r < 3; r++) {\n" + updates + "}\n"
              + f"System.out.println({total});\n}} }}")
    expected = sum(range(40)) + 40 * 3
    run_full_pipeline(source, "Many", f"{expected}\n")


def test_long_straightline_method():
    body = "int acc = 1;\n" + "".join(
        f"acc = acc * 3 + {i % 7};\nacc = acc % 100019;\n"
        for i in range(250))
    source = ("class Line { static void main() {\n" + body
              + "System.out.println(acc); } }")
    module = compile_to_module(source, optimize=True)
    verify_module(module)
    plain = Interpreter(compile_to_module(source)).run_main("Line")
    optimized = Interpreter(module).run_main("Line")
    assert plain.stdout == optimized.stdout
    decoded = decode_module(encode_module(module))
    assert Interpreter(decoded).run_main("Line").stdout == plain.stdout


def test_nested_try_pyramid():
    depth = 6
    source = "class Pyramid { static void main() {\nint mark = 0;\n"
    for i in range(depth):
        source += f"try {{ mark = mark * 10 + {i + 1};\n"
    source += "int z = 0; int boom = 1 / z;\n"
    for i in reversed(range(depth)):
        source += ("} catch (ArithmeticException e) { "
                   f"mark = mark * 10 + {i + 1}; throw e; }}\n"
                   if i > 0 else
                   "} catch (ArithmeticException e) { "
                   "mark = mark * 10 + 9; }\n")
    source += "System.out.println(mark);\n} }"
    run_full_pipeline(source, "Pyramid", _pyramid_expected(depth))


def _pyramid_expected(depth):
    from repro import jmath
    mark = 0
    for i in range(depth):
        mark = jmath.i32(jmath.i32(mark * 10) + (i + 1))
    for i in reversed(range(depth)):
        mark = jmath.i32(jmath.i32(mark * 10)
                         + ((i + 1) if i > 0 else 9))
    return f"{mark}\n"


def test_switch_with_many_cases():
    cases = "".join(f"case {i}: r = {i * i}; break;\n" for i in range(30))
    source = ("class Sw { static void main() { int total = 0;\n"
              "for (int i = 0; i < 35; i++) { int r = -1;\n"
              f"switch (i) {{ {cases} default: r = 0; }}\n"
              "total += r; }\nSystem.out.println(total); } }")
    expected = sum(i * i for i in range(30))
    run_full_pipeline(source, "Sw", f"{expected}\n")


def test_wide_expression_tree():
    expr = " + ".join(f"(n * {i} - {i % 5})" for i in range(60))
    source = ("class Wide { static void main() { int n = 3;\n"
              f"System.out.println({expr}); }} }}")
    n = 3
    expected = sum(n * i - i % 5 for i in range(60))
    run_full_pipeline(source, "Wide", f"{expected}\n")
