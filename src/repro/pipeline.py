"""Compilation pipeline: source text to SafeTSA module (and the bytecode
baseline)."""

from __future__ import annotations

from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.ssa.construction import build_function
from repro.ssa.ir import Module
from repro.typesys.table import TypeTable
from repro.typesys.types import ArrayType, Type
from repro.typesys.world import World
from repro.uast.builder import UastBuilder


def compile_to_module(source: str, *, optimize: bool = False,
                      prune_phis: bool = True, eager_phis: bool = True,
                      filename: str = "<source>") -> Module:
    """Full producer pipeline: parse, check, lower, build SSA, optimise."""
    unit = parse_compilation_unit(source, filename)
    world = analyze(unit)
    table = TypeTable(world)
    module = Module(world, table)
    uast_builder = UastBuilder(world)
    for decl in unit.classes:
        module.classes.append(decl.info)
        table.declare_class(decl.info)
        for umethod in uast_builder.build_class(decl):
            function = build_function(world, decl.info, umethod,
                                      eager_phis=eager_phis)
            module.add_function(function)
    _intern_used_types(module)
    if prune_phis:
        from repro.ssa.phi_pruning import prune_dead_phis
        for function in module.functions.values():
            prune_dead_phis(function)
    if optimize:
        from repro.opt.pipeline import optimize_module
        optimize_module(module)
    return module


def _intern_used_types(module: Module) -> None:
    """Make sure every type referenced by an instruction is in the table."""
    table = module.type_table
    for function in module.functions.values():
        for block in function.blocks:
            for instr in block.all_instrs():
                plane = instr.plane
                if plane is not None and plane.kind != "safeidx":
                    _intern_type(table, plane.type)
                for attr in ("target_type", "ref_type", "array_type",
                             "plane_type"):
                    value = getattr(instr, attr, None)
                    if isinstance(value, Type):
                        _intern_type(table, value)


def _intern_type(table: TypeTable, type: Type) -> None:
    if type not in table:
        table.intern(type)
    if isinstance(type, ArrayType):
        _intern_type(table, type.element)


def compile_to_classfiles(source: str, *, filename: str = "<source>"):
    """Baseline pipeline: parse, check, lower, emit stack bytecode."""
    from repro.jvm.codegen import compile_unit
    unit = parse_compilation_unit(source, filename)
    world = analyze(unit)
    uast_builder = UastBuilder(world)
    per_class = {}
    for decl in unit.classes:
        per_class[decl.info] = uast_builder.build_class(decl)
    return compile_unit(world, per_class)
