"""Printer smoke tests plus wire coverage for every CST region kind."""

import pytest

from repro.encode.deserializer import decode_module
from repro.encode.serializer import encode_module
from repro.interp.interpreter import Interpreter
from repro.pipeline import compile_to_module
from repro.ssa.cst import (
    RBasic,
    RDoWhile,
    RIf,
    RLabeled,
    RLoop,
    RSeq,
    RTry,
    RWhile,
    iter_regions,
)
from repro.ssa.printer import format_function, format_module
from repro.tsa.verifier import verify_module
from repro.uast.printer import format_method


def roundtrip_and_run(source, main_class, region_kinds):
    module = compile_to_module(source)
    found = set()
    for function in module.functions.values():
        for region in iter_regions(function.cst):
            found.add(type(region))
    for kind in region_kinds:
        assert kind in found, f"{kind.__name__} not exercised"
    expected = Interpreter(module).run_main(main_class)
    decoded = decode_module(encode_module(module))
    verify_module(decoded)
    actual = Interpreter(decoded).run_main(main_class)
    assert actual.stdout == expected.stdout
    return expected.stdout


class TestRegionWireCoverage:
    def test_dowhile_region_round_trips(self):
        out = roundtrip_and_run(
            "class T { static void main() {"
            "int n = 0; do { n += 2; } while (n < 10);"
            "System.out.println(n); } }",
            "T", [RDoWhile])
        assert out == "10\n"

    def test_loop_region_round_trips(self):
        out = roundtrip_and_run(
            "class T { static void main() {"
            "int n = 0; while (true) { n++; if (n == 7) break; }"
            "System.out.println(n); } }",
            "T", [RLoop])
        assert out == "7\n"

    def test_labeled_region_round_trips(self):
        out = roundtrip_and_run(
            "class T { static void main() {"
            "int c = 0;"
            "outer: for (int i = 0; i < 4; i++) {"
            "  for (int j = 0; j < 4; j++) {"
            "    if (i + j == 4) continue outer;"
            "    c++; } }"
            "System.out.println(c); } }",
            "T", [RLabeled, RWhile])
        assert out == "10\n"

    def test_try_region_round_trips(self):
        out = roundtrip_and_run(
            "class T { static void main() {"
            "try { int z = 0; int q = 1 / z; }"
            "catch (ArithmeticException e) { System.out.println(\"c\"); }"
            "} }",
            "T", [RTry, RIf, RSeq, RBasic])
        assert out == "c\n"

    def test_all_kinds_in_one_method(self):
        source = """
        class T { static void main() {
            int acc = 0;
            do { acc++; } while (acc < 3);
            while (true) { acc++; if (acc > 5) break; }
            lab: { if (acc > 0) break lab; acc = -1; }
            try { acc = acc / (acc - acc); }
            catch (ArithmeticException e) { acc += 10; }
            System.out.println(acc);
        } }
        """
        out = roundtrip_and_run(source, "T",
                                [RDoWhile, RLoop, RLabeled, RTry])
        assert out == "16\n"


class TestPrinters:
    def test_uast_printer_covers_nodes(self):
        from repro.frontend.parser import parse_compilation_unit
        from repro.frontend.semantics import analyze
        from repro.uast.builder import build_uast
        source = """
        class P {
            int f;
            static int go(int[] xs, boolean c) {
                int total = xs.length;
                do { total--; } while (total > 0 && c);
                try { total = xs[0] / total; }
                catch (ArithmeticException e) { throw e; }
                switch (total) { case 1: total = 2; break; }
                P p = new P();
                p.f = total;
                return p.f;
            }
        }
        """
        unit = parse_compilation_unit(source)
        world = analyze(unit)
        for umethod in build_uast(unit.classes[0], world):
            text = format_method(umethod)
            assert umethod.method.name in text
            assert text.count("\n") > 0

    def test_ssa_printer_output_is_parseable_shape(self):
        module = compile_to_module(
            "class T { static int f(int a) {"
            "if (a > 0) return a; return -a; } }")
        text = format_module(module)
        assert "function T.f(int)" in text
        assert "branch" in text
        assert "; preds:" in text
        # every value appears with its id
        assert "v" in text

    def test_printer_marks_exception_preds(self):
        module = compile_to_module(
            "class T { static int f(int a, int b) {"
            "try { return a / b; }"
            "catch (ArithmeticException e) { return 0; } } }")
        text = format_module(module)
        assert "!" in text  # exception predecessor marker
        assert "caughtexc" in text

    def test_plane_and_describe_strings(self):
        from repro.ssa.ir import Const, Plane
        from repro.typesys.types import ClassType, INT
        assert str(Plane.of_type(INT)) == "int"
        assert str(Plane.safe(ClassType("X"))) == "safe:X"
        const = Const(INT, 42)
        assert "42" in const.describe()
        assert str(Plane.safe_index(const)).startswith("safeidx:v")


class TestLrDisassembly:
    def test_lr_notation_shape(self):
        from repro.tsa.disasm import format_function_lr
        module = compile_to_module(
            "class T { static int f(boolean c, int i, int j) {"
            "int x; if (c) { x = i + j; } else { x = i - j; }"
            "return x * 2; } }")
        text = format_function_lr(module.function_named("T", "f"))
        # registers fill per plane from r0
        assert "boolean            r0 <- param 0" in text
        assert "int                r0 <- param 1" in text
        assert "int                r1 <- param 2" in text
        # dominator-relative references
        assert "(1-0) (1-1)" in text
        # the phi merges the two branch values with l = 0
        assert "phi (0-0) (0-0)" in text

    def test_lr_covers_corpus(self):
        from repro.tsa.disasm import format_module_lr
        from repro.bench.corpus import corpus_source
        module = compile_to_module(corpus_source("BinaryCode"),
                                   optimize=True)
        text = format_module_lr(module)
        assert "caughtexc" in text
        assert "xdispatch" in text or "xcall" in text
        assert "(0-" in text and "(1-" in text

    def test_cli_lr_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "T.java"
        path.write_text("class T { static int f(int a) { return -a; } }")
        assert main(["disasm", str(path), "--lr"]) == 0
        out = capsys.readouterr().out
        assert "r0 <-" in out
