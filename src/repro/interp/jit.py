"""Consumer-side code generation: SafeTSA -> Python ("the JIT").

The paper's consumer is "a dynamic class loader that takes SafeTSA code
distribution units and executes them using on-the-fly code generation"
(Section 7), and its premise is that SafeTSA arrives *ready* for code
generation -- no stack simulation, no type inference, no dataflow
verification.  This module demonstrates exactly that: each decoded
function is translated, block by block, into a Python function.  The
translation consumes the SSA directly:

* every instruction becomes one assignment to its register (``v<n>``);
* phi instructions become parallel copies on the incoming edges (a
  single tuple assignment, so phi-swaps are handled for free);
* ``downcast`` disappears (a register alias), exactly as the paper
  promises ("will not result in any actual code on the eventual target
  machine");
* exception edges become ``try/except`` around the subblock's trapping
  tail, jumping to the dispatch block.

Semantically the JIT is bit-for-bit equivalent to
:class:`repro.interp.interpreter.Interpreter` (tested differentially);
operationally it is several times faster, which stands in for the
paper's "competitive runtime system" claim.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro import jmath
from repro.interp.heap import (
    ArrayRef,
    JavaError,
    JStr,
    ObjectRef,
    runtime_class,
    value_instanceof,
)
from repro.interp.interpreter import ExecutionResult
from repro.interp.runtime import Runtime
from repro.ssa import ir
from repro.ssa.ir import Block, Function, Module
from repro.typesys.world import MethodInfo


class JitError(Exception):
    """Translation failure (invalid module or unsupported shape)."""


class _Emitter:
    """Accumulates generated source with indentation."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def source(self) -> str:
        return "\n".join(self.lines)


class JitCompiler:
    """Translates a module's functions to Python callables on demand."""

    def __init__(self, module: Module):
        self.module = module
        self.world = module.world
        self.runtime = Runtime(module.world)
        self.runtime.invoke_virtual = self._invoke_virtual_for_runtime
        self._compiled: dict[int, Callable] = {}
        self._names = itertools.count(1)
        self._initialized = False

    # ------------------------------------------------------------------
    # public API (mirrors the interpreter)

    def run_main(self, class_name: Optional[str] = None,
                 method_name: str = "main") -> ExecutionResult:
        target = None
        # key-only iteration keeps a lazily loaded module lazy
        for method in self.module.functions:
            if method.name != method_name or not method.is_static:
                continue
            if class_name is not None and \
                    method.declaring.name.split(".")[-1] != \
                    class_name.split(".")[-1]:
                continue
            target = self.module.functions[method]
            break
        if target is None:
            raise JitError(f"no static {method_name} found")
        args = [None] if target.method.param_types else []
        return self.run_function(target, args)

    def run_function(self, function: Function,
                     args: list) -> ExecutionResult:
        self._ensure_initialized()
        compiled = self.get(function)
        exception = None
        value = None
        try:
            value = compiled(*args)
        except JavaError as error:
            exception = error.value
        return ExecutionResult(value, exception,
                               "".join(self.runtime.stdout), 0)

    def _ensure_initialized(self) -> None:
        if self._initialized:
            return
        self._initialized = True
        for info in self.module.classes:
            for method in info.methods:
                if method.name == "<clinit>":
                    function = self.module.functions.get(method)
                    if function is not None:
                        self.get(function)()

    # ------------------------------------------------------------------
    # compilation

    def get(self, function: Function) -> Callable:
        cached = self._compiled.get(id(function))
        if cached is None:
            cached = self._translate(function)
            self._compiled[id(function)] = cached
        return cached

    def _invoker(self, call: ir.Call) -> Callable:
        """A call-site closure: static binding resolves once, virtual
        dispatch memoizes per runtime class."""
        method = call.method
        if not call.dispatch:
            return self._static_invoker(method)
        table: dict[int, Callable] = {}
        resolve = self._resolve_virtual
        static_invoker = self._static_invoker

        def invoke_virtual(*args):
            receiver = args[0]
            key = id(receiver.__class__) if not isinstance(
                receiver, ObjectRef) else id(receiver.class_info)
            target = table.get(key)
            if target is None:
                resolved = resolve(receiver, method)
                target = static_invoker(resolved)
                table[key] = target
            return target(*args)
        return invoke_virtual

    def _static_invoker(self, method: MethodInfo) -> Callable:
        if method.is_native:
            runtime = self.runtime

            def invoke_native(*args):
                return runtime.invoke_native(method, list(args))
            return invoke_native
        function = self.module.functions.get(method)
        if function is None:
            raise JitError(f"no body for {method.qualified_name}")
        cell: list = []
        get = self.get

        def invoke(*args):
            if not cell:
                cell.append(get(function))
            return cell[0](*args)
        return invoke

    def _resolve_virtual(self, receiver, method: MethodInfo) -> MethodInfo:
        cls = runtime_class(self.world, receiver)
        if cls is None:
            raise JitError("virtual dispatch on a non-object")
        if 0 <= method.vtable_slot < len(cls.vtable):
            resolved = cls.vtable[method.vtable_slot]
            if resolved.signature == method.signature:
                return resolved
        for candidate in cls.methods_named(method.name):
            if candidate.signature == method.signature:
                return candidate
        return method

    def _invoke_virtual_for_runtime(self, receiver, method: MethodInfo):
        resolved = self._resolve_virtual(receiver, method)
        return self._static_invoker(resolved)(receiver)

    # ------------------------------------------------------------------
    # translation

    def _translate(self, function: Function) -> Callable:
        env: dict = {"_JavaError": JavaError}
        emitter = _Emitter()
        name = f"_jit_{next(self._names)}"
        translator = _FunctionTranslator(self, function, env, emitter)
        translator.translate(name)
        code = emitter.source()
        try:
            exec(compile(code, f"<jit:{function.name}>", "exec"), env)
        except SyntaxError as error:  # pragma: no cover - translator bug
            raise JitError(f"generated bad code for {function.name}: "
                           f"{error}\n{code}") from None
        return env[name]


class _FunctionTranslator:
    def __init__(self, jit: JitCompiler, function: Function, env: dict,
                 emitter: _Emitter):
        self.jit = jit
        self.function = function
        self.env = env
        self.out = emitter
        self._binding_counter = itertools.count(1)

    def bind(self, value) -> str:
        name = f"_g{next(self._binding_counter)}"
        self.env[name] = value
        return name

    # -- helpers bound once per function -----------------------------------

    def translate(self, name: str) -> None:
        function = self.function
        method = function.method
        arity = len(method.param_types) + (0 if method.is_static else 1)
        params = ", ".join(f"a{i}" for i in range(arity))
        self.out.emit(f"def {name}({params}):")
        self.out.indent += 1
        reachable = [b for b in function.reachable_blocks()]
        if not reachable:
            self.out.emit("return None")
            self.out.indent -= 1
            return
        for param in function.params:
            self.out.emit(f"v{param.id} = a{param.index}")
        self.out.emit("_exc = None")
        self.out.emit(f"_b = {function.entry.id}")
        self.out.emit("while True:")
        self.out.indent += 1
        for index, block in enumerate(reachable):
            keyword = "if" if index == 0 else "elif"
            self.out.emit(f"{keyword} _b == {block.id}:")
            self.out.indent += 1
            self._translate_block(block)
            self.out.indent -= 1
        self.out.emit("else:")
        self.out.indent += 1
        self.out.emit("raise RuntimeError('jit: bad block id')")
        self.out.indent -= 2
        self.out.indent -= 1

    def _phi_copies(self, source: Block, target: Block, kind: str) -> str:
        """The parallel copy for edge source->target (may be '')."""
        if not target.phis:
            return ""
        index = None
        for position, (pred, pred_kind) in enumerate(target.preds):
            if pred is source and pred_kind == kind:
                index = position
                break
        if index is None:
            raise JitError("edge missing from predecessor list")
        targets = ", ".join(f"v{phi.id}" for phi in target.phis)
        values = ", ".join(f"v{phi.operands[index].id}"
                           for phi in target.phis)
        return f"{targets} = {values}"

    def _jump(self, source: Block, target: Block, kind: str = "norm") -> None:
        copies = self._phi_copies(source, target, kind)
        if copies:
            self.out.emit(copies)
        self.out.emit(f"_b = {target.id}")
        self.out.emit("continue")

    def _translate_block(self, block: Block) -> None:
        exc_target = block.exc_succ()
        body = list(block.instrs)
        tail_trap = (exc_target is not None and body and body[-1].traps
                     and block.term is not None
                     and block.term.kind == "fall")
        plain = body[:-1] if tail_trap else body
        for instr in plain:
            self._translate_instr(instr)
        if tail_trap:
            self.out.emit("try:")
            self.out.indent += 1
            self._translate_instr(body[-1])
            self.out.indent -= 1
            self.out.emit("except _JavaError as _e:")
            self.out.indent += 1
            self.out.emit("_exc = _e.value")
            self._jump(block, exc_target, "exc")
            self.out.indent -= 1
        self._translate_term(block, exc_target)

    def _translate_term(self, block: Block, exc_target) -> None:
        term = block.term
        if term is None:
            raise JitError(f"B{block.id} lacks a terminator")
        if term.kind == "return":
            value = f"v{term.value.id}" if term.value is not None else "None"
            self.out.emit(f"return {value}")
            return
        if term.kind == "throw":
            if exc_target is not None:
                self.out.emit(f"_exc = v{term.value.id}")
                self._jump(block, exc_target, "exc")
            else:
                self.out.emit(f"raise _JavaError(v{term.value.id})")
            return
        if term.kind == "unreachable":
            self.out.emit("raise RuntimeError('jit: unreachable')")
            return
        normal = block.normal_succs()
        if term.kind == "branch":
            if len(normal) != 2:
                raise JitError("branch without two successors")
            self.out.emit(f"if v{term.value.id}:")
            self.out.indent += 1
            self._jump(block, normal[0])
            self.out.indent -= 1
            self.out.emit("else:")
            self.out.indent += 1
            self._jump(block, normal[1])
            self.out.indent -= 1
            return
        if len(normal) != 1:
            raise JitError(f"{term.kind} with {len(normal)} successors")
        self._jump(block, normal[0])

    # -- instructions -------------------------------------------------------

    def _translate_instr(self, instr: ir.Instr) -> None:
        handler = getattr(self, "_i_" + type(instr).__name__.lower(), None)
        if handler is None:
            raise JitError(f"jit cannot translate {type(instr).__name__}")
        handler(instr)

    def _i_const(self, instr: ir.Const) -> None:
        value = instr.value
        if isinstance(value, str):
            name = self.bind(JStr.intern(value))
            self.out.emit(f"v{instr.id} = {name}")
        elif value is None or isinstance(value, bool) \
                or isinstance(value, int):
            self.out.emit(f"v{instr.id} = {value!r}")
        else:
            name = self.bind(value)  # floats: avoid repr round-trip issues
            self.out.emit(f"v{instr.id} = {name}")

    def _i_param(self, instr: ir.Param) -> None:
        pass  # bound in the prologue

    def _i_prim(self, instr: ir.Prim) -> None:
        operation = instr.operation
        args = ", ".join(f"v{op.id}" for op in instr.operands)
        if operation.traps:
            wrapper = self.bind(_trapping(operation.fold, self.jit.runtime))
            self.out.emit(f"v{instr.id} = {wrapper}({args})")
        else:
            fold = self.bind(operation.fold)
            self.out.emit(f"v{instr.id} = {fold}({args})")

    def _i_refcmp(self, instr: ir.RefCmp) -> None:
        op = "is" if instr.is_eq else "is not"
        self.out.emit(f"v{instr.id} = v{instr.operands[0].id} {op} "
                      f"v{instr.operands[1].id}")

    def _i_nullcheck(self, instr: ir.NullCheck) -> None:
        helper = self.bind(self.jit.runtime)
        value = f"v{instr.operands[0].id}"
        self.out.emit(f"if {value} is None: "
                      f"{helper}.throw('java.lang.NullPointerException')")
        self.out.emit(f"v{instr.id} = {value}")

    def _i_idxcheck(self, instr: ir.IdxCheck) -> None:
        helper = self.bind(_idxcheck_helper(self.jit.runtime))
        self.out.emit(f"v{instr.id} = {helper}(v{instr.array.id}, "
                      f"v{instr.index.id})")

    def _i_upcast(self, instr: ir.Upcast) -> None:
        helper = self.bind(_upcast_helper(self.jit, instr.target_type))
        self.out.emit(f"v{instr.id} = {helper}(v{instr.operands[0].id})")

    def _i_downcast(self, instr: ir.Downcast) -> None:
        self.out.emit(f"v{instr.id} = v{instr.operands[0].id}")

    def _i_getfield(self, instr: ir.GetField) -> None:
        self.out.emit(f"v{instr.id} = v{instr.operands[0].id}"
                      f".fields[{instr.field.slot}]")

    def _i_setfield(self, instr: ir.SetField) -> None:
        self.out.emit(f"v{instr.operands[0].id}.fields[{instr.field.slot}]"
                      f" = v{instr.operands[1].id}")

    def _i_getstatic(self, instr: ir.GetStatic) -> None:
        runtime = self.bind(self.jit.runtime)
        field = self.bind(instr.field)
        self.out.emit(f"v{instr.id} = {runtime}.get_static({field})")

    def _i_setstatic(self, instr: ir.SetStatic) -> None:
        runtime = self.bind(self.jit.runtime)
        field = self.bind(instr.field)
        self.out.emit(f"{runtime}.set_static({field}, "
                      f"v{instr.operands[0].id})")

    def _i_getelt(self, instr: ir.GetElt) -> None:
        self.out.emit(f"v{instr.id} = v{instr.operands[0].id}"
                      f".elements[v{instr.operands[1].id}]")

    def _i_setelt(self, instr: ir.SetElt) -> None:
        if instr.array_type.element.is_reference():
            helper = self.bind(_storecheck_helper(self.jit))
            self.out.emit(f"{helper}(v{instr.operands[0].id}, "
                          f"v{instr.operands[2].id})")
        self.out.emit(f"v{instr.operands[0].id}"
                      f".elements[v{instr.operands[1].id}] = "
                      f"v{instr.operands[2].id}")

    def _i_arraylen(self, instr: ir.ArrayLen) -> None:
        self.out.emit(f"v{instr.id} = "
                      f"len(v{instr.operands[0].id}.elements)")

    def _i_new(self, instr: ir.New) -> None:
        cls = self.bind(instr.class_info)
        ctor = self.bind(ObjectRef)
        self.out.emit(f"v{instr.id} = {ctor}({cls})")

    def _i_newarray(self, instr: ir.NewArray) -> None:
        helper = self.bind(_newarray_helper(self.jit.runtime,
                                            instr.array_type))
        self.out.emit(f"v{instr.id} = {helper}(v{instr.operands[0].id})")

    def _i_instanceof(self, instr: ir.InstanceOf) -> None:
        helper = self.bind(_instanceof_helper(self.jit,
                                              instr.target_type))
        self.out.emit(f"v{instr.id} = {helper}(v{instr.operands[0].id})")

    def _i_call(self, instr: ir.Call) -> None:
        invoker = self.bind(self.jit._invoker(instr))
        args = ", ".join(f"v{op.id}" for op in instr.operands)
        target = f"v{instr.id} = " if instr.plane is not None else ""
        self.out.emit(f"{target}{invoker}({args})")

    def _i_caughtexc(self, instr: ir.CaughtExc) -> None:
        self.out.emit(f"v{instr.id} = _exc")


# ----------------------------------------------------------------------
# bound helpers

def _trapping(fold, runtime):
    def apply(*args):
        try:
            return fold(*args)
        except ZeroDivisionError:
            runtime.throw("java.lang.ArithmeticException", "/ by zero")
    return apply


def _idxcheck_helper(runtime):
    def idxcheck(array, index):
        if 0 <= index < len(array.elements):
            return index
        runtime.throw(
            "java.lang.ArrayIndexOutOfBoundsException",
            f"Index {index} out of bounds for length "
            f"{len(array.elements)}")
    return idxcheck


def _upcast_helper(jit, target_type):
    world = jit.world
    runtime = jit.runtime

    def upcast(value):
        if value is None:
            return None
        if not value_instanceof(world, value, target_type):
            runtime.throw("java.lang.ClassCastException", str(target_type))
        return value
    return upcast


def _instanceof_helper(jit, target_type):
    world = jit.world

    def check(value):
        return value_instanceof(world, value, target_type)
    return check


def _newarray_helper(runtime, array_type):
    def newarray(length):
        if length < 0:
            runtime.throw("java.lang.NegativeArraySizeException",
                          str(length))
        return ArrayRef(array_type, length)
    return newarray


def _storecheck_helper(jit):
    world = jit.world
    runtime = jit.runtime

    def storecheck(array, value):
        element = array.array_type.element
        if value is not None \
                and not value_instanceof(world, value, element):
            runtime.throw("java.lang.ArrayStoreException", str(element))
    return storecheck
