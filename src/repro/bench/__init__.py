"""Benchmark corpus and measurement harness (Figures 5 and 6)."""

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_names, corpus_source
from repro.bench.metrics import (
    ClassMetrics,
    measure_corpus,
    measure_program,
)

__all__ = [
    "CORPUS_PROGRAMS",
    "corpus_names",
    "corpus_source",
    "ClassMetrics",
    "measure_corpus",
    "measure_program",
]
