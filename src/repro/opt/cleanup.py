"""Post-optimisation CFG repair.

Check elimination can delete the trapping instruction that justified a
subblock's exception edge.  This pass removes such stale edges: the
dispatch block loses the corresponding predecessor, its phis lose the
matching operand, and the CST leaf's ``exc`` flag is cleared so the
re-derived CFG stays canonical.

When a try body loses *all* of its exception points, the dispatch block
becomes unreachable but its handler still has normal out-edges into the
join after the try.  :func:`remove_dead_handlers` excises the whole
``RTry`` from the CST (keeping just the body), re-derives the CFG, and
rebuilds every phi's operand list to match the surviving predecessors.
"""

from __future__ import annotations

from repro.ssa.cst import (
    RBasic,
    RDoWhile,
    RIf,
    RLabeled,
    RLoop,
    RSeq,
    RTry,
    RWhile,
    Region,
    derive_cfg,
    iter_regions,
)
from repro.ssa.ir import Block, Function


def remove_stale_exception_edges(function: Function) -> int:
    """Drop exception edges from blocks with no exception point."""
    removed = 0
    for region in iter_regions(function.cst):
        if not isinstance(region, RBasic) or not region.exc:
            continue
        block = region.block
        term = block.term
        if term is not None and term.kind == "throw":
            continue  # a throw is always an exception point
        if block.instrs and block.instrs[-1].traps:
            continue  # still ends with a trapping instruction
        dispatch = block.exc_succ()
        region.exc = False
        if dispatch is None:
            continue
        index = dispatch.preds.index((block, "exc"))
        del dispatch.preds[index]
        block.succs.remove((dispatch, "exc"))
        for phi in dispatch.phis:
            operand = phi.operands[index]
            del phi.operands[index]
            if operand not in phi.operands:
                operand.users.discard(phi)
        removed += 1
    return removed


def remove_dead_handlers(function: Function) -> int:
    """Drop try regions whose dispatch block became unreachable.

    Iterates to a fixpoint: deleting an inner handler can remove the only
    exception edges feeding an *outer* dispatch, orphaning it in turn."""
    total = 0
    while True:
        removed = _remove_dead_handlers_once(function)
        if not removed:
            return total
        total += removed


def _remove_dead_handlers_once(function: Function) -> int:
    removed = 0

    def rewrite(region: Region) -> Region:
        nonlocal removed
        if isinstance(region, RSeq):
            region.regions = [rewrite(child) for child in region.regions]
            return region
        if isinstance(region, RIf):
            region.then_region = rewrite(region.then_region)
            if region.else_region is not None:
                region.else_region = rewrite(region.else_region)
            return region
        if isinstance(region, RWhile):
            region.body = rewrite(region.body)
            return region
        if isinstance(region, RDoWhile):
            region.body = rewrite(region.body)
            return region
        if isinstance(region, (RLoop, RLabeled)):
            region.body = rewrite(region.body)
            return region
        if isinstance(region, RTry):
            region.body = rewrite(region.body)
            if not region.dispatch_block.preds:
                removed += 1
                return region.body  # the handler is dead code
            region.handler = rewrite(region.handler)
            return region
        return region

    function.cst = rewrite(function.cst)
    if removed:
        _rebuild_edges_and_phis(function)
    return removed


def _rebuild_edges_and_phis(function: Function) -> None:
    """Re-derive the CFG from the (rewritten) CST and cut phi operands
    whose predecessor edges disappeared."""
    old_operands: dict[int, dict[tuple, object]] = {}
    for block in function.blocks:
        if not block.phis:
            continue
        table: dict[tuple, list] = {}
        for index, (pred, kind) in enumerate(block.preds):
            table[(pred.id, kind)] = [phi.operands[index]
                                      for phi in block.phis]
        old_operands[block.id] = table
    derive_cfg(function)
    reachable = {block.id for block in function.reachable_blocks()}
    for block in function.blocks:
        if block.id not in reachable or not block.phis:
            continue
        table = old_operands.get(block.id, {})
        columns = []
        for pred, kind in block.preds:
            column = table.get((pred.id, kind))
            if column is None:  # pragma: no cover - derivation mismatch
                raise AssertionError(
                    f"new edge B{pred.id}->B{block.id} has no phi data")
            columns.append(column)
        for position, phi in enumerate(block.phis):
            phi.drop_operands()
            for column in columns:
                phi.add_operand(column[position])
    # Drop blocks that fell out of the CST with the excised handlers.
    # Pruning by *reachability* here would be wrong for nested dead
    # tries: an outer dispatch can be unreachable while its RTry is
    # still in the CST, and once dropped from ``function.blocks`` a
    # later ``derive_cfg`` never resets its (now stale) exc preds, so
    # the fixpoint in :func:`remove_dead_handlers` would stop before
    # excising the outer try.  Blocks still referenced by the CST stay;
    # they are removed on the iteration that excises their region.
    kept = _cst_block_ids(function.cst)
    function.blocks = [block for block in function.blocks
                       if block.id in kept]


def _cst_block_ids(root: Region) -> set[int]:
    """Ids of every block referenced by the CST (incl. dispatch blocks)."""
    ids: set[int] = set()
    for region in iter_regions(root):
        if isinstance(region, RBasic):
            ids.add(region.block.id)
        elif isinstance(region, RIf):
            ids.add(region.cond_block.id)
        elif isinstance(region, RWhile):
            ids.add(region.header.id)
        elif isinstance(region, RDoWhile):
            ids.add(region.cond_block.id)
        elif isinstance(region, RTry):
            ids.add(region.dispatch_block.id)
    return ids
