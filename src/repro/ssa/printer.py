"""Disassembler-style dump of SafeTSA functions (debugging, CLI, tests)."""

from __future__ import annotations

from repro.ssa.ir import Block, Function, Module


def format_block(block: Block) -> str:
    lines = [f"B{block.id}:"]
    preds = ", ".join(f"B{p.id}{'!' if kind == 'exc' else ''}"
                      for p, kind in block.preds)
    if preds:
        lines.append(f"    ; preds: {preds}")
    for instr in block.phis:
        lines.append(f"    v{instr.id} = {instr.describe()}")
    for instr in block.instrs:
        if instr.plane is None:
            lines.append(f"    {instr.describe()}")
        else:
            lines.append(f"    v{instr.id} = {instr.describe()}")
    term = block.term
    if term is not None:
        extra = f" v{term.value.id}" if term.value is not None else ""
        if term.kind in ("break", "continue"):
            extra += f" depth={term.depth}"
        lines.append(f"    {term.kind}{extra}")
    return "\n".join(lines)


def format_function(function: Function) -> str:
    lines = [f"function {function.name} "
             f"({len(function.blocks)} blocks, "
             f"{function.instruction_count()} instrs)"]
    for block in function.blocks:
        lines.append(format_block(block))
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts = []
    for function in module.functions.values():
        parts.append(format_function(function))
    return "\n\n".join(parts)
