"""Content-addressed compilation cache: source + flags -> wire bytes.

The producer side of the pipeline (parse, semantic analysis, SSA
construction, optimisation) is the expensive half; the consumer side
(decode + verify) is cheap by design -- the paper's asymmetry, and the
reason mobile-code results are worth caching as *encoded modules* rather
than in-memory objects.  A hit replays the consumer path only:

    key  = SHA-256 over (format version, pipeline flags, source text)
    value = the encoded ``.stsa`` bytes for that exact compilation

Because the wire format is self-validating (decoding re-verifies every
reference), a stale or corrupted cache entry can produce a
``DecodeError`` but never an unsound module.

The cache is in-memory by default; pass ``cache_dir`` (or set the
``REPRO_CACHE_DIR`` environment variable) to persist entries on disk,
one file per key, written atomically.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.encode.common import wire_format_version

#: Bump when the wire format (or anything the key does not capture)
#: changes meaning; old entries then miss instead of decoding garbage.
FORMAT_VERSION = "stsa1"


class CompilationCache:
    """Maps compilation keys to encoded module bytes, counting hits."""

    def __init__(self, cache_dir: Optional[str] = None):
        self._memory: dict[str, bytes] = {}
        self._dir = Path(cache_dir) if cache_dir else None
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(source: str, format_version: str = FORMAT_VERSION,
            **flags) -> str:
        """Content address of one compilation (source + pipeline flags).

        ``format_version`` is the *wire* format the entry's bytes are
        in ("stsa1" by default, "stsa2" for enveloped output): a v1 and
        a v2 encoding of the same compilation can never collide.
        """
        hasher = hashlib.sha256()
        hasher.update(format_version.encode())
        for name in sorted(flags):
            hasher.update(f"\x00{name}={flags[name]!r}".encode())
        hasher.update(b"\x00\x00")
        hasher.update(source.encode("utf-8"))
        return hasher.hexdigest()

    def get(self, key: str) -> Optional[bytes]:
        wire = self._memory.get(key)
        if wire is None and self._dir is not None:
            path = self._dir / f"{key}.stsa"
            if path.is_file():
                wire = path.read_bytes()
                self._memory[key] = wire
        if wire is None:
            self.misses += 1
            return None
        self.hits += 1
        return wire

    def put(self, key: str, wire: bytes) -> None:
        self._memory[key] = wire
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            # atomic publish: a concurrent reader sees the old entry,
            # the new entry, or a miss -- never a partial file
            fd, temp = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(wire)
                os.replace(temp, self._dir / f"{key}.stsa")
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise

    def clear(self) -> None:
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        if self._dir is not None and self._dir.is_dir():
            for path in self._dir.glob("*.stsa"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def __bool__(self) -> bool:
        # an *empty* cache is still an enabled cache: without this,
        # ``if cache:`` at the call sites would fall through __len__
        # and silently disable caching until the first entry lands
        return True

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4),
                "entries": len(self._memory)}


class VerifiedModuleCache:
    """Remembers which wire streams already passed verification.

    The fused loader keys on the SHA-256 of the exact wire bytes; a hit
    records that those bytes decoded and verified cleanly once, plus the
    per-function ``(start_bit, end_bit)`` body boundaries the sequential
    decode observed.  A warm load then skips the residual verification
    sweeps and can seek straight to individual bodies (lazy random
    access, parallel ``--jobs N`` decode) -- seeks the format itself
    cannot offer, having no length prefixes.

    Entries are advisory, never load-bearing for soundness: the decode
    itself still runs with every safety-by-construction check, so a
    stale or corrupted entry can produce a ``DecodeError`` but never an
    unsound module (the same guarantee :class:`CompilationCache`
    documents).  Boundaries are re-checked against the stream end on
    use.
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self._memory: dict[str, list[tuple[int, int]]] = {}
        self._dir = Path(cache_dir) if cache_dir else None
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(wire: bytes) -> str:
        """Content address of one distribution unit: its detected wire
        format version plus its exact bytes.  Mixing the version in
        means a v1 stream and a v2 envelope can never collide even if
        a hostile envelope embedded v1 bytes verbatim."""
        hasher = hashlib.sha256()
        hasher.update(FORMAT_VERSION.encode())
        hasher.update(b"\x00")
        hasher.update(wire_format_version(wire).encode())
        hasher.update(b"\x00verified\x00")
        hasher.update(wire)
        return hasher.hexdigest()

    def get(self, key: str) -> Optional[list[tuple[int, int]]]:
        boundaries = self._memory.get(key)
        if boundaries is None and self._dir is not None:
            path = self._dir / f"{key}.verified"
            if path.is_file():
                boundaries = self._parse(path.read_text())
                if boundaries is not None:
                    self._memory[key] = boundaries
        if boundaries is None:
            self.misses += 1
            return None
        self.hits += 1
        return boundaries

    def put(self, key: str, boundaries: list[tuple[int, int]]) -> None:
        self._memory[key] = list(boundaries)
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            text = FORMAT_VERSION + "\n" + "".join(
                f"{start} {end}\n" for start, end in boundaries)
            fd, temp = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(temp, self._dir / f"{key}.verified")
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise

    @staticmethod
    def _parse(text: str) -> Optional[list[tuple[int, int]]]:
        lines = text.splitlines()
        if not lines or lines[0] != FORMAT_VERSION:
            return None  # other format version: treat as a miss
        try:
            boundaries = []
            for line in lines[1:]:
                start, end = line.split()
                boundaries.append((int(start), int(end)))
            return boundaries
        except ValueError:
            return None  # damaged entry: miss, the cold path re-runs

    def clear(self) -> None:
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        if self._dir is not None and self._dir.is_dir():
            for path in self._dir.glob("*.verified"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def __bool__(self) -> bool:
        return True  # an empty cache is still an enabled cache

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4),
                "entries": len(self._memory)}


class DictionaryStore:
    """Content-addressed blob store for wire-format v2 sections.

    Shared dictionaries and delta bases are named by their raw SHA-256
    digest -- the 32 bytes an envelope actually carries -- so "present
    but wrong" is impossible by construction: a blob that does not hash
    to its key is treated as absent (and the envelope's resolution then
    rejects with a stable ``DEC-*`` code).  Like the caches above the
    store is advisory for performance, never load-bearing for
    soundness: whatever it returns is re-fed to the verifying decoder.

    Memory-only by default; with ``cache_dir`` blobs persist as
    ``<digest-hex>.blob`` files, written atomically.
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self._memory: dict[bytes, bytes] = {}
        self._dir = Path(cache_dir) if cache_dir else None

    def put(self, blob: bytes) -> bytes:
        """Publish ``blob``; returns its 32-byte content address."""
        digest = hashlib.sha256(blob).digest()
        if digest not in self._memory:
            self._memory[digest] = bytes(blob)
            if self._dir is not None:
                self._dir.mkdir(parents=True, exist_ok=True)
                fd, temp = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(blob)
                    os.replace(temp, self._dir / f"{digest.hex()}.blob")
                except BaseException:
                    try:
                        os.unlink(temp)
                    except OSError:
                        pass
                    raise
        return digest

    def get(self, digest: bytes) -> Optional[bytes]:
        blob = self._memory.get(digest)
        if blob is None and self._dir is not None:
            path = self._dir / f"{digest.hex()}.blob"
            if path.is_file():
                blob = path.read_bytes()
                if hashlib.sha256(blob).digest() != digest:
                    return None  # damaged blob: absent, not wrong
                self._memory[digest] = blob
        return blob

    def __contains__(self, digest: bytes) -> bool:
        return self.get(digest) is not None

    def __len__(self) -> int:
        return len(self._memory)

    def __bool__(self) -> bool:
        return True  # an empty store is still an enabled store

    def clear(self) -> None:
        self._memory.clear()
        if self._dir is not None and self._dir.is_dir():
            for path in self._dir.glob("*.blob"):
                path.unlink(missing_ok=True)


#: Version tag for persisted trace-cache entries; bumping it makes old
#: entries miss instead of replaying paths over a changed recorder.
TRACE_FORMAT_VERSION = "stsa-trace1"


class TraceCache:
    """Remembers which hot paths a module's loops compiled to traces.

    Keyed on ``(wire digest, qualified function name, header index)``
    with the recorded path stored as *reachable-block indices* -- block
    ids are process-local serials and do not survive a re-decode, but
    the deterministic ``reachable_blocks()`` order does.  A warm
    process (the serve path re-running a cached module) re-creates the
    compiled traces straight from the cache and skips the whole
    count/record cycle.

    Entries are advisory, never load-bearing: the trace compiler
    re-derives guards and phi moves from the decoded SSA, so a stale
    path at worst fails to compile (cold behaviour), never produces a
    wrong trace.

    Memory-only by default; with ``cache_dir`` each digest persists as
    a ``<digest>.trace`` file, written atomically.
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self._memory: dict[str, dict[tuple[str, int], tuple[int, ...]]] = {}
        self._dir = Path(cache_dir) if cache_dir else None
        self.hits = 0
        self.misses = 0

    def get(self, digest: str) -> dict[tuple[str, int], tuple[int, ...]]:
        entries = self._memory.get(digest)
        if entries is None and self._dir is not None:
            path = self._dir / f"{digest}.trace"
            if path.is_file():
                entries = self._parse(path.read_text())
                if entries is not None:
                    self._memory[digest] = entries
        if not entries:
            self.misses += 1
            return {}
        self.hits += 1
        return dict(entries)

    def put(self, digest: str, name: str, header_index: int,
            path_indices: tuple[int, ...]) -> None:
        entries = self._memory.setdefault(digest, {})
        key = (name, int(header_index))
        if entries.get(key) == tuple(path_indices):
            return
        entries[key] = tuple(path_indices)
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            lines = [TRACE_FORMAT_VERSION]
            for (entry_name, header), indices in sorted(entries.items()):
                joined = ",".join(str(i) for i in indices)
                lines.append(f"{entry_name}\t{header}\t{joined}")
            fd, temp = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write("\n".join(lines) + "\n")
                os.replace(temp, self._dir / f"{digest}.trace")
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise

    @staticmethod
    def _parse(
            text: str
    ) -> Optional[dict[tuple[str, int], tuple[int, ...]]]:
        lines = text.splitlines()
        if not lines or lines[0] != TRACE_FORMAT_VERSION:
            return None  # other format version: treat as a miss
        try:
            entries: dict[tuple[str, int], tuple[int, ...]] = {}
            for line in lines[1:]:
                name, header, joined = line.split("\t")
                # an empty path is a persisted blacklist: "this header
                # never traces profitably, skip the count/record cycle"
                entries[(name, int(header))] = tuple(
                    int(i) for i in joined.split(",")) if joined else ()
            return entries
        except ValueError:
            return None  # damaged entry: miss, traces re-record

    def clear(self) -> None:
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        if self._dir is not None and self._dir.is_dir():
            for path in self._dir.glob("*.trace"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._memory.values())

    def __bool__(self) -> bool:
        return True  # an empty cache is still an enabled cache

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4),
                "entries": len(self)}


def default_dictionary_store() -> DictionaryStore:
    """The process-wide dictionary store.  Always present (an empty
    store deterministically rejects every digest reference), persisted
    under ``REPRO_CACHE_DIR`` when that is set."""
    return _DEFAULT_DICTS


def default_module_cache() -> Optional[VerifiedModuleCache]:
    """The process-wide verified-module cache, enabled alongside the
    compilation cache by ``REPRO_CACHE_DIR`` ("" for memory-only)."""
    return _DEFAULT_MODULES


def default_trace_cache() -> Optional[TraceCache]:
    """The process-wide trace cache, enabled alongside the other caches
    by ``REPRO_CACHE_DIR`` ("" for memory-only)."""
    return _DEFAULT_TRACES


def default_cache() -> Optional[CompilationCache]:
    """The process-wide cache, enabled by ``REPRO_CACHE_DIR`` ("" for
    memory-only) or by :func:`enable_default_cache`."""
    return _DEFAULT


def enable_default_cache(
        cache_dir: Optional[str] = None) -> CompilationCache:
    global _DEFAULT
    if _DEFAULT is None or (cache_dir and _DEFAULT._dir is None):
        _DEFAULT = CompilationCache(cache_dir or None)
    return _DEFAULT


def _from_environment() -> Optional[CompilationCache]:
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured is None:
        return None
    return CompilationCache(configured or None)


def _modules_from_environment() -> Optional[VerifiedModuleCache]:
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured is None:
        return None
    return VerifiedModuleCache(configured or None)


def _traces_from_environment() -> Optional[TraceCache]:
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured is None:
        return None
    return TraceCache(configured or None)


_DEFAULT: Optional[CompilationCache] = _from_environment()
_DEFAULT_MODULES: Optional[VerifiedModuleCache] = _modules_from_environment()
_DEFAULT_TRACES: Optional[TraceCache] = _traces_from_environment()
_DEFAULT_DICTS: DictionaryStore = DictionaryStore(
    os.environ.get("REPRO_CACHE_DIR") or None)
