"""Wire-stream mutation fuzzing: the *reject-or-equivalent* invariant.

Every mutated stream must fall into one of exactly two buckets:

* **rejected** -- :class:`~repro.encode.deserializer.DecodeError` (with
  its stable ``DEC-*`` code) or
  :class:`~repro.tsa.verifier.VerifyError` (``STSA-*``), or
* **equivalent** -- the stream decodes to a module that verifies,
  executes without host-level errors, and behaves identically after a
  further encode/decode round trip.

Anything else -- ``IndexError``, ``KeyError``, ``struct.error``,
``RecursionError``, an interpreter invariant violation on a module the
verifier accepted -- is a *finding*: evidence that malformed input can
reach code that assumed well-formedness.

Execution of accepted mutants is resource-bounded: a small step budget
(`StepLimitExceeded` counts as a clean run), an array-allocation cap
(`AllocationLimitExceeded` likewise), and a recursion guard
(`RecursionError` *during execution* maps to Java's
``StackOverflowError`` semantics, not to a finding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.fuzz.gen import DrawSource

#: step budget for executing accepted mutants -- mutated programs may
#: loop forever or print per iteration, so this stays deliberately small
EXEC_MAX_STEPS = 20_000
#: array-allocation cap for accepted mutants (a mutated length constant
#: must not make the harness swap)
EXEC_MAX_ARRAY = 1 << 16


@dataclass(frozen=True)
class StreamOutcome:
    """Classification of one (possibly mutated) wire stream."""

    kind: str      # "rejected" | "accepted" | "finding"
    code: str      # DEC-* / STSA-* code, run class, or exception name
    detail: str = ""

    @property
    def is_finding(self) -> bool:
        return self.kind == "finding"


# ======================================================================
# mutation operators

def _bit_flip(data: bytearray, src: DrawSource) -> bytearray:
    position = src.integer(0, len(data) * 8 - 1)
    data[position // 8] ^= 1 << (position % 8)
    return data


def _byte_set(data: bytearray, src: DrawSource) -> bytearray:
    data[src.integer(0, len(data) - 1)] = src.integer(0, 255)
    return data


def _burst(data: bytearray, src: DrawSource) -> bytearray:
    """XOR a short run of bytes -- clobbers one coded field."""
    start = src.integer(0, len(data) - 1)
    for offset in range(src.integer(1, 8)):
        if start + offset >= len(data):
            break
        data[start + offset] ^= src.integer(1, 255)
    return data


def _truncate(data: bytearray, src: DrawSource) -> bytearray:
    return data[:src.integer(0, len(data) - 1)]


def _extend(data: bytearray, src: DrawSource) -> bytearray:
    """Trailing data must never ride along unnoticed."""
    tail = bytes(src.integer(0, 255) for _ in range(src.integer(1, 8)))
    return data + tail


def _splice(data: bytearray, src: DrawSource) -> bytearray:
    """Copy one chunk over another: gamma fields and bounded symbols
    land on plausible-but-wrong values from elsewhere in the stream."""
    length = src.integer(1, max(1, len(data) // 4))
    source = src.integer(0, len(data) - 1)
    target = src.integer(0, len(data) - 1)
    chunk = bytes(data[source:source + length])
    data[target:target + len(chunk)] = chunk
    return data


def _delete(data: bytearray, src: DrawSource) -> bytearray:
    """Remove a chunk: every later symbol shifts phase."""
    length = src.integer(1, max(1, len(data) // 4))
    start = src.integer(0, len(data) - 1)
    del data[start:start + length]
    return data


def _duplicate(data: bytearray, src: DrawSource) -> bytearray:
    length = src.integer(1, max(1, len(data) // 4))
    start = src.integer(0, len(data) - 1)
    chunk = bytes(data[start:start + length])
    at = src.integer(0, len(data))
    data[at:at] = chunk
    return data


def _header(data: bytearray, src: DrawSource) -> bytearray:
    """Target the bytes right after the magic: type-table entry count,
    array-element and superclass indexes, member tables."""
    from repro.encode.common import MAGIC
    lo = len(MAGIC)
    hi = min(len(data) - 1, lo + 24)
    if hi < lo:
        return data
    data[src.integer(lo, hi)] ^= src.integer(1, 255)
    return data


def _zero_run(data: bytearray, src: DrawSource) -> bytearray:
    """Zeros decode as the smallest symbol everywhere -- dominator-pair
    ``(l, r)`` references collapse onto register 0."""
    start = src.integer(0, len(data) - 1)
    for offset in range(src.integer(1, 6)):
        if start + offset >= len(data):
            break
        data[start + offset] = 0
    return data


MUTATORS: tuple[tuple[str, Callable], ...] = (
    ("bitflip", _bit_flip),
    ("bitflip", _bit_flip),     # weighted: single flips find the most
    ("byteset", _byte_set),
    ("burst", _burst),
    ("truncate", _truncate),
    ("extend", _extend),
    ("splice", _splice),
    ("delete", _delete),
    ("duplicate", _duplicate),
    ("header", _header),
    ("zero", _zero_run),
)


def mutate_stream(data: bytes, src: DrawSource) -> tuple[str, bytes]:
    """Apply one randomly chosen mutation operator; returns its name
    and the mutated bytes."""
    if not data:
        return "extend", bytes(_extend(bytearray(), src))
    name, operator = src.choice(MUTATORS)
    return name, bytes(operator(bytearray(data), src))


# ----------------------------------------------------------------------
# v2 envelope operators: aimed at the fields the v1 operators only hit
# by luck -- digests, the mode byte, the section counts

def _v2_mode(data: bytearray, src: DrawSource) -> bytearray:
    """Rewrite the envelope mode byte (full <-> delta <-> garbage)."""
    from repro.encode.common import MAGIC_V2
    position = len(MAGIC_V2)
    if position >= len(data):
        return _extend(data, src)
    data[position] = src.integer(0, 255)
    return data


def _v2_count(data: bytearray, src: DrawSource) -> bytearray:
    """Rewrite the first varint byte (dictionary count / prefix_len):
    phantom sections, oversized counts, continuation-bit runs."""
    from repro.encode.common import MAGIC_V2
    position = len(MAGIC_V2) + 1
    if position >= len(data):
        return _extend(data, src)
    data[position] = src.integer(0, 255)
    return data


def _v2_digest(data: bytearray, src: DrawSource) -> bytearray:
    """Corrupt a digest byte -- either in the leading digest region
    (dictionary refs / delta base) or in the trailing 32 bytes (the
    delta target digest).  Content addressing must turn every such
    corruption into a stable rejection, never a wrong blob."""
    from repro.encode.common import MAGIC_V2
    lo = len(MAGIC_V2) + 2
    if lo >= len(data):
        return _extend(data, src)
    if len(data) > 40 and src.integer(0, 1):
        position = src.integer(len(data) - 32, len(data) - 1)
    else:
        position = src.integer(lo, min(len(data) - 1, lo + 40))
    data[position] ^= src.integer(1, 255)
    return data


#: the v2 lane: envelope-targeted operators plus every generic byte
#: operator (envelopes must survive arbitrary corruption too)
V2_MUTATORS: tuple[tuple[str, Callable], ...] = (
    ("v2mode", _v2_mode),
    ("v2count", _v2_count),
    ("v2digest", _v2_digest),
    ("v2digest", _v2_digest),   # weighted: digests are the new surface
) + MUTATORS


def mutate_stream_v2(data: bytes, src: DrawSource) -> tuple[str, bytes]:
    """One mutation from the v2 lane (envelope-aware operator mix)."""
    if not data:
        return "extend", bytes(_extend(bytearray(), src))
    name, operator = src.choice(V2_MUTATORS)
    return name, bytes(operator(bytearray(data), src))


# ======================================================================
# the invariant checker

def _default_args(method) -> Optional[list]:
    """Zero values for a static method's parameters, or None when a
    parameter type has no obvious default."""
    args = []
    for param in method.param_types:
        if param.is_reference():
            args.append(None)
        else:
            name = getattr(param, "name", "")
            args.append(0.0 if name in ("float", "double") else
                        False if name == "boolean" else 0)
    return args


def _execute(module, max_steps: int):
    """Run the first runnable static method body; returns the
    ExecutionResult or None when the module has nothing to run."""
    from repro.interp.interpreter import Interpreter
    interp = Interpreter(module, max_steps=max_steps)
    interp.max_array_length = EXEC_MAX_ARRAY
    for method, function in module.functions.items():
        if method.is_static and method.name != "<clinit>":
            return interp.run_function(function, _default_args(method))
    return None


def check_stream(data: bytes, *, max_steps: int = EXEC_MAX_STEPS,
                 store=None) -> StreamOutcome:
    """Classify one stream against the reject-or-equivalent invariant.

    ``store`` resolves v2 envelopes (the v2 mutation lane passes the
    campaign's dictionary store so honest envelopes decode and mutated
    ones must reject); the default ``None`` uses the environment store,
    under which digest references simply reject as missing.
    """
    from repro.encode.deserializer import DecodeError, decode_module
    from repro.encode.serializer import encode_module
    from repro.interp.interpreter import (
        AllocationLimitExceeded,
        StepLimitExceeded,
    )
    from repro.tsa.verifier import VerifyError, verify_module

    try:
        module = decode_module(data, store=store)
    except DecodeError as error:
        return StreamOutcome("rejected",
                             getattr(error, "code", "DEC-MALFORMED"),
                             str(error)[:200])
    except Exception as error:  # the whole point of the fuzzer
        return StreamOutcome("finding", type(error).__name__,
                             f"decode: {error!r}"[:300])

    try:
        verify_module(module)
    except VerifyError as error:
        return StreamOutcome("rejected", error.code, str(error)[:200])
    except Exception as error:
        return StreamOutcome("finding", type(error).__name__,
                             f"verify: {error!r}"[:300])

    def run(target_module):
        try:
            result = _execute(target_module, max_steps)
        except (StepLimitExceeded, AllocationLimitExceeded):
            return ("bounded", None)
        except RecursionError:
            # Java semantics for unbounded recursion: StackOverflowError
            return ("stackoverflow", None)
        if result is None:
            return ("no-entry", None)
        return (result.stdout, result.exception_name())

    try:
        first = run(module)
    except Exception as error:
        return StreamOutcome("finding", type(error).__name__,
                             f"execute: {error!r}"[:300])

    # equivalence across a further round trip: re-encode, decode,
    # re-run -- behaviour must be identical
    try:
        reencoded = encode_module(module)
        second_module = decode_module(reencoded)
        verify_module(second_module)
        second = run(second_module)
    except Exception as error:
        return StreamOutcome("finding", type(error).__name__,
                             f"reencode: {error!r}"[:300])
    if second != first:
        return StreamOutcome(
            "finding", "ReencodeDivergence",
            f"first run {first!r} != round-tripped run {second!r}"[:300])
    return StreamOutcome("accepted", "ran" if first[0] != "no-entry"
                         else "no-entry")
