"""Chunk-feedable streaming decode: verify-and-execute while arriving.

The wire format has no length prefixes, so a cold decode is strictly
sequential -- but every primitive read is *prefix-stable*: a read that
succeeds against a prefix of the stream consumes the same bits and
returns the same value against any extension, and a read that runs out
of data always raises (``BitIOError``) rather than returning padded
zeros.  That makes retry-from-a-recorded-bit-position a sound streaming
strategy, and it is the whole trick here:

* each :meth:`StreamingLoader.feed` appends a chunk, then retries the
  next not-yet-decoded unit (first the header, then one body at a
  time) from its recorded start bit against the grown buffer;
* a retry that fails with ``BitIOError`` while more data may arrive
  just waits -- prefix stability guarantees a *deterministic* rejection
  (bad magic, alphabet violation, limit breach) never hides behind
  that: any read that did not hit end-of-stream would fail identically
  on the complete unit, and surfaces the moment enough bytes exist;
* each body that lands is immediately residual-checked (the same
  :class:`~repro.loader.fused._ResidualChecker` sweep as a cold fused
  load), so the module is *verified as far as it exists* at every
  moment.

``module.functions`` is a :class:`StreamFunctions` view: bodies that
arrived behave normally, touching a body that has not arrived yet
raises ``DecodeError`` with code ``DEC-STREAM``.  Since the interpreter
locates ``main`` by key iteration only, a consumer can run ``main`` as
soon as its body (and whatever it actually calls) has landed -- while
later bodies are still in flight.

:meth:`StreamingLoader.finish` declares end-of-input: everything
pending must now decode, the v1 trailing-padding rule runs
(``DEC-TRAILING``), and the observed boundary index is published to the
verified-module cache exactly as a cold fused load would.  Truncation
therefore rejects with ``DEC-STREAM`` -- aliased to the one-shot path's
``DEC-IO`` in :data:`repro.analysis.diagnostics.CODE_ALIASES`, same
defect, two delivery paths.

v2 envelopes stream too: :func:`repro.encode.format.
resolve_stream_prefix` maps the buffered envelope prefix to the longest
derivable payload prefix (dictionary sections resolve as their digests
arrive; a delta is all-or-nothing), and deterministic envelope errors
-- unknown dictionary, bad mode -- raise mid-stream without waiting.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from contextlib import contextmanager
from typing import Optional

from repro.cache import VerifiedModuleCache, default_module_cache
from repro.encode.bitio import BitIOError, BitReader
from repro.encode.deserializer import DecodeError
from repro.encode.format import resolve_stream, resolve_stream_prefix
from repro.loader.fused import FusedDecoder, _ResidualChecker
from repro.ssa.ir import Function, Module


class _NeedMoreData(Exception):
    """Internal: the next unit ran off the buffered prefix."""


@contextmanager
def _stream_decode_errors(final: bool):
    """The fused loader's error wrapping, with one streaming twist:
    while more data may arrive, *every* ``BitIOError`` means "wait" --
    prefix stability guarantees deterministic rejections re-surface
    identically once the unit is complete, so nothing is masked."""
    from repro.typesys.table import TypeTableError
    from repro.typesys.world import WorldError
    try:
        yield
    except DecodeError as error:
        # a body decoder converts BitIOError itself (attaching its
        # location); recover the end-of-stream case from the message --
        # "unexpected end of stream" is the one BitIOError the reader
        # raises on exhaustion, and the only buffer-dependent one
        if not final and error.code == "DEC-IO" \
                and "unexpected end of stream" in str(error):
            raise _NeedMoreData from None
        raise
    except BitIOError as error:
        if not final:
            raise _NeedMoreData from None
        message = str(error)
        code = "DEC-STREAM" if "unexpected end of stream" in message \
            else "DEC-IO"
        raise DecodeError(message, code) from None
    except WorldError as error:
        raise DecodeError(str(error), "DEC-WORLD") from None
    except TypeTableError as error:
        raise DecodeError(str(error), "DEC-TABLE") from None
    except ValueError as error:
        raise DecodeError(str(error), "DEC-VALUE") from None


class StreamFunctions(MutableMapping):
    """``module.functions`` for a module still arriving.

    Keys, length, and membership come from the header's member tables
    (stream order), so entry-point lookup works before any body lands;
    fetching a body that has not arrived raises ``DecodeError`` with
    the stable code ``DEC-STREAM`` -- an honest "not here yet", never a
    silently absent function.
    """

    def __init__(self, bodies):
        self._order = list(bodies)
        self._pending = set(bodies)
        self._functions: dict = {}

    def _arrived(self, method, function: Function) -> None:
        self._pending.discard(method)
        self._functions[method] = function

    def __getitem__(self, method) -> Function:
        function = self._functions.get(method)
        if function is not None:
            return function
        if method in self._pending:
            raise DecodeError(
                f"body of {method} has not arrived yet", "DEC-STREAM")
        raise KeyError(method)

    def __setitem__(self, method, function) -> None:
        if method not in self._functions and method not in self._pending:
            self._order.append(method)
        self._arrived(method, function)

    def __delitem__(self, method) -> None:
        self._order.remove(method)  # raises ValueError if absent
        self._functions.pop(method, None)
        self._pending.discard(method)

    def __iter__(self):
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, method) -> bool:
        return method in self._functions or method in self._pending

    @property
    def pending(self) -> int:
        """Bodies announced by the header but not yet arrived."""
        return len(self._pending)

    def ready(self, method) -> bool:
        """True once ``method``'s body has arrived and verified --
        probe-without-raising for consumers racing the stream."""
        return method in self._functions


class StreamingLoader:
    """Incremental verify-as-it-arrives load of one distribution unit.

    Feed chunks with :meth:`feed`; it returns the module as soon as the
    header has decoded (and the same module thereafter), ``None`` while
    the header is still incomplete.  Call :meth:`finish` when the
    transport reports end-of-input -- it completes and returns the
    fully verified module or raises the same stable rejection the
    one-shot loader would (modulo the documented ``DEC-IO`` /
    ``DEC-STREAM`` alias for truncation).

    Any rejection poisons the stream: the error is re-raised on every
    later call, mirroring the lazy loader's poison-on-error rule.
    """

    def __init__(self, *, cache=None, store=None):
        if cache is None:
            cache = default_module_cache()
        elif cache is False:
            cache = None
        self.cache: Optional[VerifiedModuleCache] = cache
        self.store = store
        self.module: Optional[Module] = None
        #: per-body ``(start_bit, end_bit)`` observed so far
        self.boundaries: list[tuple[int, int]] = []
        self._buffer = bytearray()
        self._payload = b""
        self._decoder: Optional[FusedDecoder] = None
        self._bodies: list = []
        self._functions: Optional[StreamFunctions] = None
        self._header_end = 0
        self._next_body = 0
        self._finished = False
        self._error: Optional[BaseException] = None

    @property
    def bodies_ready(self) -> int:
        """Bodies decoded and residual-verified so far."""
        return self._next_body

    @property
    def complete(self) -> bool:
        """True once :meth:`finish` returned a fully checked module."""
        return self._finished and self._error is None

    def feed(self, chunk: bytes) -> Optional[Module]:
        """Append ``chunk`` and decode as far as the data now allows."""
        if self._error is not None:
            raise self._error
        if self._finished:
            raise DecodeError(
                f"{len(chunk)} bytes fed after end of stream",
                "DEC-TRAILING")
        self._buffer += chunk
        self._advance(final=False)
        return self.module

    def finish(self) -> Module:
        """Declare end-of-input; everything pending must decode now."""
        if self._error is not None:
            raise self._error
        if self._finished:
            return self.module
        try:
            self._payload = resolve_stream(bytes(self._buffer), self.store)
            self._advance(final=True)
            self._finish_trailing()
        except _NeedMoreData:  # pragma: no cover - final never waits
            raise AssertionError("streaming decode waited at finish")
        except Exception as error:
            self._error = error
            raise
        self._finished = True
        self._publish()
        return self.module

    # -- the retry state machine ----------------------------------------

    def _advance(self, final: bool) -> None:
        try:
            if not final:
                # deterministic envelope errors (unknown dictionary,
                # bad mode) raise here, mid-stream; an incomplete
                # envelope just yields a shorter payload prefix
                self._payload = resolve_stream_prefix(
                    bytes(self._buffer), self.store)
            if self._decoder is None and not self._try_header(final):
                return
            self._decode_arrived_bodies(final)
        except _NeedMoreData:
            if final:  # pragma: no cover - prefix stability violated
                raise AssertionError("streaming decode waited at finish")
        except Exception as error:
            self._error = error
            raise

    def _try_header(self, final: bool) -> bool:
        """Retry the header against the grown payload.  A fresh decoder
        each time: a header that ran off the buffer leaves partially
        linked world state behind, so nothing of the failed attempt is
        kept."""
        decoder = FusedDecoder(self._payload)
        try:
            with _stream_decode_errors(final):
                bodies = decoder.decode_header()
        except _NeedMoreData:
            return False
        self._decoder = decoder
        self._bodies = bodies
        self._header_end = decoder.reader.bit_position()
        self._functions = StreamFunctions(bodies)
        decoder.module.functions = self._functions
        self.module = decoder.module
        return True

    def _decode_arrived_bodies(self, final: bool) -> None:
        """Decode every body the buffered prefix now covers, in stream
        order, residual-checking each as it lands -- the cold fused
        path, one body at a time."""
        decoder = self._decoder
        while self._next_body < len(self._bodies):
            start = self.boundaries[-1][1] if self.boundaries \
                else self._header_end
            reader = BitReader(self._payload, start_bit=start)
            method = self._bodies[self._next_body]
            try:
                with _stream_decode_errors(final):
                    body_decoder = decoder._function_decoder(method, reader)
                    function = body_decoder.decode()
            except _NeedMoreData:
                return
            _ResidualChecker(decoder.module, function, body_decoder.domtree,
                             body_decoder.dispatch_of).verify()
            self.boundaries.append((start, reader.bit_position()))
            self._functions._arrived(method, function)
            self._next_body += 1

    def _finish_trailing(self) -> None:
        """The v1 end-of-stream rule, against the complete payload."""
        decoder = self._decoder
        end = self.boundaries[-1][1] if self.boundaries \
            else self._header_end
        decoder.reader = BitReader(self._payload, start_bit=end)
        with _stream_decode_errors(True):
            decoder._require_end()

    def _publish(self) -> None:
        """A finished stream is a completed cold verify: record it just
        as the fused loader would, so the next load of these bytes is
        warm."""
        if self.cache is not None:
            self.cache.put(VerifiedModuleCache.key(self._payload),
                           list(self.boundaries))


def stream_module(chunks, *, cache=None, store=None) -> Module:
    """Convenience one-call form: feed every chunk, then finish."""
    loader = StreamingLoader(cache=cache, store=store)
    for chunk in chunks:
        loader.feed(chunk)
    return loader.finish()
