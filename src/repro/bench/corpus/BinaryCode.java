// Stand-in for sun.tools.java.BinaryCode / BinaryAttribute: decodes a
// synthetic class-file-like byte stream with try/catch around every
// parsing stage.  Exception-dispatch joins receive phis for all the
// variables assigned in the try bodies -- the pattern behind the paper's
// dead-phi statistics.
class StreamError extends Exception {
    StreamError(String message) { super(message); }
}

class ByteStream {
    int[] data;
    int pos;

    ByteStream(int[] data) {
        this.data = data;
        this.pos = 0;
    }

    int u1() throws StreamError {
        if (pos >= data.length) throw new StreamError("eof at " + pos);
        int v = data[pos] & 255;
        pos = pos + 1;
        return v;
    }

    int u2() throws StreamError {
        int hi = u1();
        int lo = u1();
        return (hi << 8) | lo;
    }

    int u4() throws StreamError {
        int hi = u2();
        int lo = u2();
        return (hi << 16) | lo;
    }

    void skip(int n) throws StreamError {
        if (pos + n > data.length) throw new StreamError("skip past end");
        pos = pos + n;
    }
}

class BinaryCode {
    int magic;
    int majorVersion;
    int poolCount;
    int methodCount;
    int codeBytes;
    int attrCount;
    String status;

    boolean load(ByteStream in) {
        int stage = 0;
        int sum = 0;
        try {
            magic = in.u4();
            stage = 1;
            if (magic != 0xCAFEBABE) {
                throw new StreamError("bad magic");
            }
            int minor = in.u2();
            majorVersion = in.u2();
            stage = 2;
            poolCount = in.u2();
            for (int i = 1; i < poolCount; i++) {
                int tag = in.u1();
                sum = sum + tag;
                switch (tag) {
                    case 1: in.skip(in.u2()); break;
                    case 3: in.skip(4); break;
                    case 7: in.skip(2); break;
                    case 12: in.skip(4); break;
                    default: throw new StreamError("bad tag " + tag);
                }
            }
            stage = 3;
            methodCount = in.u2();
            codeBytes = 0;
            for (int m = 0; m < methodCount; m++) {
                int access = in.u2();
                int length = in.u2();
                codeBytes = codeBytes + length;
                in.skip(length);
                sum = sum + access;
            }
            stage = 4;
            attrCount = in.u2();
            status = "ok(sum=" + sum + ")";
            return true;
        } catch (StreamError e) {
            status = "failed at stage " + stage + ": " + e.getMessage();
            return false;
        }
    }

    static int[] wellFormed() {
        int[] out = new int[64];
        int p = 0;
        // magic 0xCAFEBABE
        out[p++] = 0xCA; out[p++] = 0xFE; out[p++] = 0xBA; out[p++] = 0xBE;
        out[p++] = 0; out[p++] = 3;      // minor
        out[p++] = 0; out[p++] = 45;     // major
        out[p++] = 0; out[p++] = 4;      // pool count (3 entries)
        out[p++] = 1; out[p++] = 0; out[p++] = 2;  // utf8 len 2
        out[p++] = 65; out[p++] = 66;
        out[p++] = 7; out[p++] = 0; out[p++] = 1;  // class
        out[p++] = 3; out[p++] = 0; out[p++] = 0; out[p++] = 0; out[p++] = 9;
        out[p++] = 0; out[p++] = 2;      // two methods
        out[p++] = 0; out[p++] = 1;      // access
        out[p++] = 0; out[p++] = 3;      // length 3
        out[p++] = 9; out[p++] = 9; out[p++] = 9;
        out[p++] = 0; out[p++] = 8;      // access
        out[p++] = 0; out[p++] = 0;      // length 0
        out[p++] = 0; out[p++] = 5;      // attributes
        return out;
    }

    static void main() {
        BinaryCode code = new BinaryCode();
        boolean ok = code.load(new ByteStream(wellFormed()));
        System.out.println(ok + " " + code.status);
        System.out.println("pool=" + code.poolCount
                           + " methods=" + code.methodCount
                           + " code=" + code.codeBytes
                           + " attrs=" + code.attrCount);

        // truncated stream: fails mid-pool
        int[] truncated = new int[12];
        int[] good = wellFormed();
        for (int i = 0; i < truncated.length; i++) truncated[i] = good[i];
        BinaryCode bad = new BinaryCode();
        System.out.println(bad.load(new ByteStream(truncated))
                           + " " + bad.status);

        // wrong magic
        int[] wrong = wellFormed();
        wrong[0] = 0;
        BinaryCode worse = new BinaryCode();
        System.out.println(worse.load(new ByteStream(wrong))
                           + " " + worse.status);

        // bad constant tag
        int[] badTag = wellFormed();
        badTag[10] = 99;
        BinaryCode tagged = new BinaryCode();
        System.out.println(tagged.load(new ByteStream(badTag))
                           + " " + tagged.status);
    }
}
