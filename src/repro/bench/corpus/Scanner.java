// Stand-in for sun.tools.java.Scanner: a hand-written lexer for a small
// expression language, heavy on char tests, switch dispatch and string
// handling.
class ScanToken {
    int kind;        // 0 eof, 1 int, 2 ident, 3 op, 4 string
    int intValue;
    String text;

    ScanToken(int kind, int intValue, String text) {
        this.kind = kind;
        this.intValue = intValue;
        this.text = text;
    }

    String describe() {
        switch (kind) {
            case 0: return "<eof>";
            case 1: return "int(" + intValue + ")";
            case 2: return "ident(" + text + ")";
            case 3: return "op(" + text + ")";
            default: return "str(" + text + ")";
        }
    }
}

class Scanner {
    String input;
    int pos;
    int line;
    int tokenCount;
    int errorCount;

    Scanner(String input) {
        this.input = input;
        this.pos = 0;
        this.line = 1;
    }

    boolean atEnd() {
        return pos >= input.length();
    }

    char peek() {
        if (atEnd()) return '\0';
        return input.charAt(pos);
    }

    char advance() {
        char c = peek();
        pos = pos + 1;
        if (c == '\n') line = line + 1;
        return c;
    }

    void skipSpace() {
        while (!atEnd()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == '#') {
                while (!atEnd() && peek() != '\n') advance();
            } else {
                break;
            }
        }
    }

    ScanToken next() {
        skipSpace();
        tokenCount = tokenCount + 1;
        if (atEnd()) return new ScanToken(0, 0, "");
        char c = peek();
        if (Character.isDigit(c)) return scanNumber();
        if (Character.isLetter(c) || c == '_') return scanIdent();
        if (c == '"') return scanString();
        return scanOperator();
    }

    ScanToken scanNumber() {
        int value = 0;
        int start = pos;
        while (!atEnd() && Character.isDigit(peek())) {
            value = value * 10 + (advance() - '0');
        }
        if (!atEnd() && peek() == 'x' && value == 0 && pos - start == 1) {
            advance();
            value = 0;
            while (!atEnd() && isHexDigit(peek())) {
                value = value * 16 + hexValue(advance());
            }
        }
        return new ScanToken(1, value, "");
    }

    static boolean isHexDigit(char c) {
        if (Character.isDigit(c)) return true;
        return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
    }

    static int hexValue(char c) {
        if (Character.isDigit(c)) return c - '0';
        if (c >= 'a') return c - 'a' + 10;
        return c - 'A' + 10;
    }

    ScanToken scanIdent() {
        int start = pos;
        while (!atEnd() && (Character.isLetterOrDigit(peek())
                            || peek() == '_')) {
            advance();
        }
        String text = input.substring(start, pos);
        return new ScanToken(2, 0, text);
    }

    ScanToken scanString() {
        advance();
        String out = "";
        while (!atEnd() && peek() != '"') {
            char c = advance();
            if (c == '\\' && !atEnd()) {
                char esc = advance();
                if (esc == 'n') out = out + "\n";
                else out = out + esc;
            } else {
                out = out + c;
            }
        }
        if (atEnd()) {
            errorCount = errorCount + 1;
        } else {
            advance();
        }
        return new ScanToken(4, 0, out);
    }

    ScanToken scanOperator() {
        char c = advance();
        String text = "" + c;
        char follow = peek();
        switch (c) {
            case '<':
            case '>':
            case '=':
            case '!':
                if (follow == '=') { advance(); text = text + "="; }
                break;
            case '&':
                if (follow == '&') { advance(); text = "&&"; }
                break;
            case '|':
                if (follow == '|') { advance(); text = "||"; }
                break;
            default:
                break;
        }
        return new ScanToken(3, 0, text);
    }

    static void main() {
        String program =
            "x = 10 + 0x1f # comment\n"
            + "while (x >= 3 && y != 4) { emit(\"a\\nb\", ident_9); }\n"
            + "total = total * (x - 1) | mask";
        Scanner scanner = new Scanner(program);
        int idents = 0;
        int ints = 0;
        int ops = 0;
        int sum = 0;
        ScanToken token = scanner.next();
        String last = "";
        while (token.kind != 0) {
            if (token.kind == 1) { ints = ints + 1; sum = sum + token.intValue; }
            else if (token.kind == 2) idents = idents + 1;
            else if (token.kind == 3) ops = ops + 1;
            last = token.describe();
            token = scanner.next();
        }
        System.out.println("tokens=" + scanner.tokenCount);
        System.out.println("idents=" + idents + " ints=" + ints + " ops=" + ops);
        System.out.println("sum=" + sum + " lines=" + scanner.line);
        System.out.println("last=" + last);
        System.out.println("errors=" + scanner.errorCount);
    }
}
