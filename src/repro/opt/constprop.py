"""Constant propagation / folding (paper Section 8: ~1-2% size effect).

Folds ``primitive`` applications whose operands are all constants, plus
constant reference comparisons and ``instanceof null``.  Trapping
operations are folded only when they do not actually trap (folding away a
division by a non-zero constant is sound; folding a division by zero
would delete a required exception).  Control flow is left untouched --
the paper performs constant propagation "at a local level".
"""

from __future__ import annotations

from typing import Optional

from repro.ssa import ir
from repro.ssa.ir import Const, Function, Instr
from repro.typesys.types import Type


class ConstPool:
    """Interns folded constants into the entry block (Section 5:
    constants are pre-loaded)."""

    def __init__(self, function: Function):
        self.function = function
        self.pool: dict[tuple, Const] = {}
        # Normalise the entry block: constants and parameters become a
        # prefix (the paper's "pre-loading"), so reusing an existing
        # constant can never place a use before its definition.
        entry = function.entry
        preload = [i for i in entry.instrs
                   if isinstance(i, (Const, ir.Param))]
        rest = [i for i in entry.instrs
                if not isinstance(i, (Const, ir.Param))]
        entry.instrs = preload + rest
        for instr in entry.instrs:
            if isinstance(instr, Const):
                self.pool[self._key(instr.type, instr.value)] = instr

    @staticmethod
    def _key(type: Type, value: object) -> tuple:
        return (type, value.__class__.__name__, repr(value))

    def get(self, type: Type, value: object) -> Const:
        key = self._key(type, value)
        cached = self.pool.get(key)
        if cached is None:
            cached = Const(type, value)
            # prepend: the entry block may contain real code whose
            # position precedes an end-of-block append
            cached.block = self.function.entry
            self.function.entry.instrs.insert(0, cached)
            self.pool[key] = cached
        return cached


def normalize_entry(function: Function) -> None:
    """Hoist constants and parameters to an entry-block prefix."""
    ConstPool(function)


def _fold(instr: Instr) -> Optional[tuple]:
    """Return ``(type, value)`` when ``instr`` folds to a constant."""
    if isinstance(instr, ir.Prim):
        values = []
        for operand in instr.operands:
            if not isinstance(operand, Const):
                return None
            values.append(operand.value)
        try:
            result = instr.operation.fold(*values)
        except ZeroDivisionError:
            return None  # the trap must be preserved
        return (instr.operation.result, result)
    if isinstance(instr, ir.RefCmp):
        left, right = instr.operands
        if isinstance(left, Const) and isinstance(right, Const) \
                and left.value is None and right.value is None:
            return (instr.plane.type, instr.is_eq)
        return None
    if isinstance(instr, ir.InstanceOf):
        operand = instr.operands[0]
        if isinstance(operand, Const) and operand.value is None:
            return (instr.plane.type, False)
        return None
    return None


def run_constprop(function: Function) -> int:
    """Fold constants to a fixpoint; returns the number of folds."""
    pool = ConstPool(function)
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.reachable_blocks():
            for instr in list(block.instrs):
                result = _fold(instr)
                if result is None:
                    continue
                type, value = result
                replacement = pool.get(type, value)
                instr.replace_all_uses(replacement)
                instr.drop_operands()
                block.instrs.remove(instr)
                folded += 1
                changed = True
    return folded
