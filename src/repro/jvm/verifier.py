"""JVM bytecode verification by dataflow analysis.

This is the costly consumer-side analysis the paper contrasts SafeTSA
against (Section 9: "checking that all operand accesses to the stack are
valid - which requires a data flow analysis - decreases the runtime of
applications significantly").  The verifier abstractly interprets every
method: it tracks the types on the operand stack and in the local
variables, merges states at join points (including exception handler
entries) and iterates to a fixpoint.

Abstract types: 'int', 'long', 'float', 'double', a reference
:class:`~repro.typesys.types.Type`, 'null', or 'top' (conflict).
"""

from __future__ import annotations

from typing import Optional

from repro.jvm.codegen import CompiledMethod
from repro.jvm.opcodes import BRANCHES
from repro.typesys.types import (
    ArrayType,
    ClassType,
    PrimitiveType,
    Type,
)
from repro.typesys.world import MethodInfo, World

OBJECT = ClassType("java.lang.Object")


class BytecodeVerifyError(Exception):
    """The method's bytecode is not type-safe."""


def _abstract(type: Type) -> object:
    if isinstance(type, PrimitiveType):
        if type.name in ("int", "boolean", "char"):
            return "int"
        return type.name
    return type


class _State:
    __slots__ = ("stack", "locals")

    def __init__(self, stack: tuple, locals: dict):
        self.stack = stack
        self.locals = locals

    def key(self) -> tuple:
        return (self.stack, tuple(sorted(self.locals.items(),
                                         key=lambda kv: kv[0],
                                         )))


def _merge_type(world: World, a, b):
    if a == b:
        return a
    if a == "top" or b == "top":
        return "top"
    a_ref = isinstance(a, Type) or a == "null"
    b_ref = isinstance(b, Type) or b == "null"
    if a_ref and b_ref:
        if a == "null":
            return b
        if b == "null":
            return a
        try:
            return world.common_supertype(a, b)
        except Exception:
            return OBJECT
    return "top"


class _MethodVerifier:
    def __init__(self, world: World, compiled: CompiledMethod):
        self.world = world
        self.compiled = compiled
        self.method = compiled.method
        self.insns = compiled.insns
        #: pc -> merged-in state
        self.states: dict[int, _State] = {}
        self.worklist: list[int] = []
        self.passes = 0

    def fail(self, pc: int, message: str) -> None:
        raise BytecodeVerifyError(
            f"{self.method.qualified_name} @{pc}: {message}")

    # ------------------------------------------------------------------

    def verify(self) -> int:
        """Run to fixpoint; returns the number of abstract steps."""
        method = self.method
        locals_: dict[int, object] = {}
        slot = 0
        if not method.is_static:
            locals_[slot] = method.declaring.type
            slot += 1
        for param in method.param_types:
            locals_[slot] = _abstract(param)
            slot += 2 if _abstract(param) in ("long", "double") else 1
        self._flow_to(0, _State((), locals_))
        steps = 0
        while self.worklist:
            pc = self.worklist.pop()
            steps += 1
            if steps > 200_000:
                self.fail(pc, "verification did not converge")
            self._interpret(pc)
        return steps

    def _flow_to(self, pc: int, state: _State) -> None:
        if pc >= len(self.insns):
            self.fail(pc, "control flow past the end of the code")
        existing = self.states.get(pc)
        if existing is None:
            self.states[pc] = state
            self.worklist.append(pc)
            return
        if len(existing.stack) != len(state.stack):
            self.fail(pc, f"stack depth mismatch at join: "
                          f"{len(existing.stack)} vs {len(state.stack)}")
        merged_stack = tuple(
            _merge_type(self.world, a, b)
            for a, b in zip(existing.stack, state.stack))
        merged_locals = {}
        for slot in set(existing.locals) | set(state.locals):
            a = existing.locals.get(slot, "top")
            b = state.locals.get(slot, "top")
            merged_locals[slot] = _merge_type(self.world, a, b)
        merged = _State(merged_stack, merged_locals)
        if merged.key() != existing.key():
            self.states[pc] = merged
            self.worklist.append(pc)

    def _flow_exceptions(self, pc: int, locals_: dict) -> None:
        for start, end, handler, catch in self.compiled.exception_table:
            if start <= pc < end:
                catch_type = catch.type if catch is not None \
                    else ClassType("java.lang.Throwable")
                self._flow_to(handler, _State((catch_type,), dict(locals_)))

    # ------------------------------------------------------------------

    def _element_type(self, array, op: str, pc: int):
        """Abstract element type for an array-load instruction."""
        kinds = {"ia": "int", "la": "long", "fa": "float", "da": "double",
                 "ba": "int", "ca": "int", "sa": "int", "aa": "ref"}
        expected = kinds[op[:2]]
        if isinstance(array, ArrayType):
            elem = _abstract(array.element)
            if expected == "ref":
                if not isinstance(elem, Type):
                    self.fail(pc, f"{op} on a {array}")
                return elem
            if elem != expected:
                self.fail(pc, f"{op} on a {array}")
            return elem
        if array == "null":
            return OBJECT if expected == "ref" else expected
        self.fail(pc, f"{op} on non-array {array}")

    def _pop(self, stack: list, pc: int, expect=None):
        if not stack:
            self.fail(pc, "operand stack underflow")
        value = stack.pop()
        if expect is not None:
            if expect == "ref":
                if not (isinstance(value, Type) or value == "null"):
                    self.fail(pc, f"expected a reference, found {value}")
            elif value != expect and value != "null":
                self.fail(pc, f"expected {expect}, found {value}")
        return value

    def _interpret(self, pc: int) -> None:
        state = self.states[pc]
        stack = list(state.stack)
        locals_ = dict(state.locals)
        insn = self.insns[pc]
        op = insn.op
        next_pcs: list[int] = [pc + 1]
        self._flow_exceptions(pc, locals_)

        if op in ("iconst",):
            stack.append("int")
        elif op == "lconst":
            stack.append("long")
        elif op == "fconst":
            stack.append("float")
        elif op == "dconst":
            stack.append("double")
        elif op == "ldc_string":
            stack.append(ClassType("java.lang.String"))
        elif op == "aconst_null":
            stack.append("null")
        elif op in ("iload", "lload", "fload", "dload", "aload"):
            value = locals_.get(insn.args[0], "top")
            expected = {"iload": "int", "lload": "long", "fload": "float",
                        "dload": "double"}.get(op)
            if expected is not None and value != expected:
                self.fail(pc, f"local {insn.args[0]} holds {value}, "
                              f"{op} needs {expected}")
            if op == "aload" and not (isinstance(value, Type)
                                      or value == "null"):
                self.fail(pc, f"local {insn.args[0]} holds {value}, "
                              "aload needs a reference")
            stack.append(value)
        elif op in ("istore", "lstore", "fstore", "dstore", "astore"):
            expected = {"istore": "int", "lstore": "long",
                        "fstore": "float", "dstore": "double"}.get(op)
            value = self._pop(stack, pc,
                              expected if expected else "ref")
            locals_[insn.args[0]] = value
        elif op in ("pop", "pop2"):
            self._pop(stack, pc)
        elif op == "dup":
            if not stack:
                self.fail(pc, "dup on empty stack")
            stack.append(stack[-1])
        elif op == "dup_x1":
            if len(stack) < 2:
                self.fail(pc, "dup_x1 needs two values")
            stack.insert(-2, stack[-1])
        elif op == "swap":
            if len(stack) < 2:
                self.fail(pc, "swap needs two values")
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op == "nop":
            pass
        elif op in _BIN_OPS:
            operand, result = _BIN_OPS[op]
            self._pop(stack, pc, _SHIFT_RHS.get(op, operand))
            self._pop(stack, pc, operand)
            stack.append(result)
        elif op in _UN_OPS:
            operand, result = _UN_OPS[op]
            self._pop(stack, pc, operand)
            stack.append(result)
        elif op in ("lcmp", "fcmpl", "fcmpg", "dcmpl", "dcmpg"):
            operand = {"l": "long", "f": "float",
                       "d": "double"}[op[0]]
            self._pop(stack, pc, operand)
            self._pop(stack, pc, operand)
            stack.append("int")
        elif op == "goto":
            next_pcs = [insn.args[0]]
        elif op in BRANCHES:
            if op.startswith("if_icmp"):
                self._pop(stack, pc, "int")
                self._pop(stack, pc, "int")
            elif op.startswith("if_acmp") or op in ("ifnull", "ifnonnull"):
                self._pop(stack, pc, "ref")
            else:
                self._pop(stack, pc, "int")
            next_pcs = [pc + 1, insn.args[0]]
        elif op.endswith("aload") and op != "aload":
            self._pop(stack, pc, "int")
            array = self._pop(stack, pc, "ref")
            stack.append(self._element_type(array, op, pc))
        elif op.endswith("astore") and op != "astore":
            elem = {"ia": "int", "la": "long", "fa": "float",
                    "da": "double", "ba": "int", "ca": "int",
                    "sa": "int"}.get(op[:2])
            self._pop(stack, pc, elem if elem else "ref")
            self._pop(stack, pc, "int")
            self._pop(stack, pc, "ref")
        elif op == "arraylength":
            self._pop(stack, pc, "ref")
            stack.append("int")
        elif op == "newarray":
            self._pop(stack, pc, "int")
            atype = {4: "boolean", 5: "char", 6: "float", 7: "double",
                     8: "int", 9: "int", 10: "int",
                     11: "long"}[insn.args[0]]
            stack.append(ArrayType(PrimitiveType(atype)))
        elif op == "anewarray":
            self._pop(stack, pc, "int")
            stack.append(ArrayType(insn.args[0]))
        elif op == "multianewarray":
            array_type, dims = insn.args
            for _ in range(dims):
                self._pop(stack, pc, "int")
            stack.append(array_type)
        elif op == "getfield":
            self._pop(stack, pc, "ref")
            stack.append(_abstract(insn.args[0].type))
        elif op == "putfield":
            self._pop(stack, pc, _abstract(insn.args[0].type)
                      if not insn.args[0].type.is_reference() else "ref")
            self._pop(stack, pc, "ref")
        elif op == "getstatic":
            stack.append(_abstract(insn.args[0].type))
        elif op == "putstatic":
            self._pop(stack, pc, _abstract(insn.args[0].type)
                      if not insn.args[0].type.is_reference() else "ref")
        elif op == "new":
            stack.append(insn.args[0].type)
        elif op == "checkcast":
            self._pop(stack, pc, "ref")
            stack.append(insn.args[0])
        elif op == "instanceof":
            self._pop(stack, pc, "ref")
            stack.append("int")
        elif op == "athrow":
            self._pop(stack, pc, "ref")
            next_pcs = []
        elif op in ("invokestatic", "invokespecial", "invokevirtual"):
            method: MethodInfo = insn.args[0]
            for param in reversed(method.param_types):
                self._pop(stack, pc,
                          _abstract(param)
                          if not param.is_reference() else "ref")
            if not method.is_static:
                self._pop(stack, pc, "ref")
            if method.return_type.descriptor() != "V":
                stack.append(_abstract(method.return_type))
        elif op == "return":
            next_pcs = []
        elif op.endswith("return"):
            expected = {"i": "int", "l": "long", "f": "float",
                        "d": "double", "a": "ref"}[op[0]]
            self._pop(stack, pc, expected)
            next_pcs = []
        else:
            self.fail(pc, f"unknown opcode {op}")

        out = _State(tuple(stack), locals_)
        for next_pc in next_pcs:
            self._flow_to(next_pc, out)


_BIN_OPS = {}
for _prefix, _type in (("i", "int"), ("l", "long"), ("f", "float"),
                       ("d", "double")):
    for _name in ("add", "sub", "mul", "div", "rem"):
        _BIN_OPS[_prefix + _name] = (_type, _type)
for _prefix in ("i", "l"):
    _type = "int" if _prefix == "i" else "long"
    for _name in ("shl", "shr", "ushr", "and", "or", "xor"):
        _BIN_OPS[_prefix + _name] = (_type, _type)

#: shift counts are always ints
_SHIFT_RHS = {"lshl": "int", "lshr": "int", "lushr": "int"}

_UN_OPS = {
    "ineg": ("int", "int"), "lneg": ("long", "long"),
    "fneg": ("float", "float"), "dneg": ("double", "double"),
    "i2l": ("int", "long"), "i2f": ("int", "float"),
    "i2d": ("int", "double"), "i2c": ("int", "int"),
    "l2i": ("long", "int"), "l2f": ("long", "float"),
    "l2d": ("long", "double"),
    "f2i": ("float", "int"), "f2l": ("float", "long"),
    "f2d": ("float", "double"),
    "d2i": ("double", "int"), "d2l": ("double", "long"),
    "d2f": ("double", "float"),
}


def verify_method(world: World, compiled: CompiledMethod) -> int:
    """Verify one method; returns the abstract-step count (a cost proxy)."""
    return _MethodVerifier(world, compiled).verify()


def verify_class(world: World, compiled_class) -> int:
    steps = 0
    for method in compiled_class.methods:
        steps += verify_method(world, method)
    return steps


def verify_classfile_set(world: World, classes) -> int:
    """Verify a whole compiled unit (the bytecode-baseline analogue of
    one SafeTSA module load); returns the total abstract-step count."""
    return sum(verify_class(world, compiled) for compiled in classes)
