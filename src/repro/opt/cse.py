"""Common subexpression elimination with check elimination.

A dominator-tree walk with a scoped value-number table (the paper
performs CSE at the producer after SSA construction, Section 8).  Memory
reads are keyed with their :class:`~repro.opt.memdep.MemDep` version, so
loads are only merged when no store or call can intervene.

Type separation makes *check elimination* a special case of CSE
(Section 4): ``nullcheck v`` dominated by another ``nullcheck v`` of the
same value always succeeds and is deleted; likewise ``idxcheck (a, i)``
on the same array value and index (array sizes are immutable,
Appendix A), and checked ``upcast``s of the same value and type.
A ``nullcheck`` whose operand is a chain of downcasts from an
intrinsically safe value (an allocation, ``this``, a caught exception,
or an already-checked value) is replaced by a free downcast.

Eliminating a dominated trapping check can leave its subblock without an
exception point; :func:`repro.opt.cleanup.remove_stale_exception_edges`
repairs the edges afterwards.
"""

from __future__ import annotations

from typing import Optional

from repro.opt.memdep import MemDep
from repro.ssa.dominators import compute_dominators
from repro.ssa import ir
from repro.ssa.ir import Block, Downcast, Function, Instr, Plane


def _value_key(instr: Instr, memdep: MemDep) -> Optional[tuple]:
    """The CSE key of ``instr``; None when the instruction is not
    eligible for elimination."""
    if isinstance(instr, ir.Prim):
        ids = [operand.id for operand in instr.operands]
        if instr.operation.commutative:
            ids.sort()
        return ("prim", instr.operation.base, instr.operation.index,
                tuple(ids))
    if isinstance(instr, ir.RefCmp):
        ids = sorted(operand.id for operand in instr.operands)
        return ("refcmp", instr.is_eq, tuple(ids))
    if isinstance(instr, ir.NullCheck):
        return ("nullcheck", instr.operands[0].id)
    if isinstance(instr, ir.IdxCheck):
        return ("idxcheck", instr.array.id, instr.index.id)
    if isinstance(instr, ir.Upcast):
        return ("upcast", instr.target_type, instr.operands[0].id)
    if isinstance(instr, ir.Downcast):
        return ("downcast", instr.plane, instr.operands[0].id)
    if isinstance(instr, ir.InstanceOf):
        return ("instanceof", instr.target_type, instr.operands[0].id)
    if isinstance(instr, ir.ArrayLen):
        # array lengths are immutable: no memory version needed
        return ("arraylen", instr.operands[0].id)
    if isinstance(instr, ir.GetField):
        return ("getfield", instr.field.qualified_name,
                instr.operands[0].id, memdep.version_before(instr))
    if isinstance(instr, ir.GetStatic):
        return ("getstatic", instr.field.qualified_name,
                memdep.version_before(instr))
    if isinstance(instr, ir.GetElt):
        return ("getelt", instr.operands[0].id, instr.operands[1].id,
                memdep.version_before(instr))
    return None


def _safe_origin(value: Instr) -> Optional[Instr]:
    """Walk downcast chains back to an intrinsically safe value."""
    while isinstance(value, Downcast):
        value = value.operands[0]
    if value.plane is not None and value.plane.kind == "safe":
        return value
    return None


class CseStats:
    def __init__(self) -> None:
        self.eliminated = 0
        self.nullchecks_removed = 0
        self.idxchecks_removed = 0
        self.upcasts_removed = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def run_cse(function: Function, partition_memory: bool = False,
            domtree=None) -> CseStats:
    """Eliminate common subexpressions; returns statistics.

    ``partition_memory`` enables the field analysis the paper proposes as
    an improvement (Section 8): stores only invalidate loads of the same
    field / array element type.  ``domtree`` is an optional precomputed
    dominator tree (the ``domtree`` analysis of
    :mod:`repro.analysis.manager`); omitted, it is computed here.
    """
    stats = CseStats()
    memdep = MemDep(function, partitioned=partition_memory)
    if domtree is None:
        domtree = compute_dominators(function)
    scopes: list[dict[tuple, Instr]] = [{}]

    def lookup(key: tuple) -> Optional[Instr]:
        for scope in reversed(scopes):
            if key in scope:
                return scope[key]
        return None

    def replace(block: Block, instr: Instr, replacement: Instr) -> None:
        instr.replace_all_uses(replacement)
        instr.drop_operands()
        block.instrs.remove(instr)
        stats.eliminated += 1
        if isinstance(instr, ir.NullCheck):
            stats.nullchecks_removed += 1
        elif isinstance(instr, ir.IdxCheck):
            stats.idxchecks_removed += 1
        elif isinstance(instr, ir.Upcast):
            stats.upcasts_removed += 1

    def visit(block: Block) -> None:
        scopes.append({})
        for instr in list(block.instrs):
            if isinstance(instr, ir.CaughtExc):
                continue
            # check elimination through statically safe origins
            if isinstance(instr, ir.NullCheck):
                origin = _safe_origin(instr.operands[0])
                if origin is not None:
                    substitute = _reuse_safe(block, instr, origin)
                    if substitute is not None:
                        replace(block, instr, substitute)
                        continue
            key = _value_key(instr, memdep)
            if key is None:
                continue
            existing = lookup(key)
            if existing is not None:
                replace(block, instr, existing)
            else:
                scopes[-1][key] = instr
        for child in sorted(domtree.children.get(block, ()),
                            key=lambda b: b.id):
            visit(child)
        scopes.pop()

    def _reuse_safe(block: Block, check: ir.NullCheck,
                    origin: Instr) -> Optional[Instr]:
        """Build (or reuse) the safe-plane value replacing ``check``."""
        wanted = Plane.safe(check.ref_type)
        if origin.plane == wanted:
            return origin
        key = ("downcast", wanted, origin.id)
        existing = lookup(key)
        if existing is not None:
            return existing
        cast = Downcast(wanted, origin)
        cast.block = block
        block.instrs.insert(block.instrs.index(check), cast)
        scopes[-1][key] = cast
        return cast

    visit(function.entry)
    return stats
