"""Property-based tests (hypothesis) over the core invariants.

The headline property: for *arbitrary generated programs*, the SafeTSA
pipeline (construct, optimise, encode, decode, execute) agrees with the
independent bytecode pipeline, and every artifact verifies.
"""

from hypothesis import given, settings, strategies as st

from repro import jmath
from repro.encode.bitio import BitReader, BitWriter
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.interp.interpreter import Interpreter
from repro.jvm.codegen import compile_unit
from repro.jvm.interp import BytecodeInterpreter
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module
from repro.uast.builder import UastBuilder


# ======================================================================
# bit-level codes

@given(st.lists(st.tuples(st.integers(min_value=1, max_value=300),
                          st.integers(min_value=0))))
def test_bounded_code_round_trip(pairs):
    normalized = [(alphabet, value % alphabet) for alphabet, value in pairs]
    writer = BitWriter()
    for alphabet, value in normalized:
        writer.write_bounded(value, alphabet)
    reader = BitReader(writer.getvalue())
    for alphabet, value in normalized:
        assert reader.read_bounded(alphabet) == value


@given(st.lists(st.integers(min_value=0, max_value=2**40)))
def test_gamma_round_trip(values):
    writer = BitWriter()
    for value in values:
        writer.write_gamma(value)
    reader = BitReader(writer.getvalue())
    for value in values:
        assert reader.read_gamma() == value


@given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1)))
def test_signed_gamma_round_trip(values):
    writer = BitWriter()
    for value in values:
        writer.write_signed_gamma(value)
    reader = BitReader(writer.getvalue())
    for value in values:
        assert reader.read_signed_gamma() == value


@given(st.integers(min_value=1, max_value=1000))
def test_phase_in_code_is_near_optimal(alphabet):
    """No symbol costs more than ceil(log2 n) bits."""
    import math
    ceiling = math.ceil(math.log2(alphabet)) if alphabet > 1 else 0
    for value in range(0, alphabet, max(alphabet // 17, 1)):
        writer = BitWriter()
        writer.write_bounded(value, alphabet)
        assert writer.bit_length() <= ceiling


# ======================================================================
# Java arithmetic

@given(st.integers(), st.integers())
def test_i32_is_32_bit_ring_homomorphism(a, b):
    assert jmath.i32(a + b) == jmath.i32(jmath.i32(a) + jmath.i32(b))
    assert jmath.i32(a * b) == jmath.i32(jmath.i32(a) * jmath.i32(b))
    assert jmath.INT_MIN <= jmath.i32(a) <= jmath.INT_MAX


@given(st.integers(min_value=jmath.INT_MIN, max_value=jmath.INT_MAX),
       st.integers(min_value=jmath.INT_MIN, max_value=jmath.INT_MAX))
def test_div_rem_reconstruct(a, b):
    if b == 0:
        return
    assert jmath.idiv(a, b) * b + jmath.irem(a, b) == a
    assert abs(jmath.irem(a, b)) < abs(b)


@given(st.integers(min_value=jmath.INT_MIN, max_value=jmath.INT_MAX),
       st.integers())
def test_shifts_match_mask_semantics(a, s):
    assert jmath.ishl(a, s, 32) == jmath.ishl(a, s & 31, 32)
    assert jmath.iushr(a, s, 32) == jmath.iushr(a, s & 31, 32)


# ======================================================================
# random-program differential testing

_INT_BIN_OPS = ["+", "-", "*", "&", "|", "^"]
_CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]
_VARS = ["a", "b", "c"]


@st.composite
def int_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return str(draw(st.integers(min_value=-100, max_value=100)))
        return draw(st.sampled_from(_VARS))
    left = draw(int_expr(depth + 1))
    right = draw(int_expr(depth + 1))
    op = draw(st.sampled_from(_INT_BIN_OPS))
    return f"({left} {op} {right})"


@st.composite
def bool_expr(draw):
    left = draw(int_expr(2))
    right = draw(int_expr(2))
    return f"({left} {draw(st.sampled_from(_CMP_OPS))} {right})"


@st.composite
def statement(draw, depth=0):
    kind = draw(st.integers(min_value=0, max_value=7 if depth < 2 else 2))
    var = draw(st.sampled_from(_VARS))
    if kind in (0, 1, 2):
        return f"{var} = {draw(int_expr())};"
    if kind == 3:
        then_body = draw(statement(depth + 1))
        else_body = draw(statement(depth + 1))
        return (f"if {draw(bool_expr())} {{ {then_body} }} "
                f"else {{ {else_body} }}")
    if kind == 4:
        body = draw(statement(depth + 1))
        return (f"for (int i{depth} = 0; i{depth} < "
                f"{draw(st.integers(min_value=1, max_value=5))}; "
                f"i{depth}++) {{ {body} }}")
    if kind == 5:
        body = draw(statement(depth + 1))
        divisor = draw(st.sampled_from(_VARS))
        return (f"try {{ {var} = {var} / {divisor}; {body} }} "
                f"catch (ArithmeticException x{depth}) "
                f"{{ {var} = -9; }}")
    if kind == 6:
        body = draw(statement(depth + 1))
        return (f"switch ({var} & 3) {{ case 0: {var} = 1; "
                f"case 1: {var} = 2; break; case 2: {body} break; "
                f"default: {var} = 5; }}")
    # while loops use a dedicated counter the body cannot reassign, so
    # generated programs always terminate quickly
    body = draw(statement(depth + 1))
    bound = draw(st.integers(min_value=1, max_value=4))
    return (f"{{ int w{depth} = {bound}; "
            f"while (w{depth} > 0) {{ w{depth} = w{depth} - 1; "
            f"{body} }} }}")


@st.composite
def program(draw):
    statements = draw(st.lists(statement(), min_size=1, max_size=6))
    body = "\n".join(statements)
    return ("class P { static void main() {\n"
            "int a = 3; int b = -7; int c = 100;\n"
            f"{body}\n"
            'System.out.println(a + " " + b + " " + c);\n'
            "} }")


@given(program())
@settings(max_examples=40, deadline=None)
def test_generated_programs_agree_across_pipelines(source):
    # SafeTSA plain
    module = compile_to_module(source)
    verify_module(module)
    plain = Interpreter(module, max_steps=2_000_000).run_main()
    # SafeTSA optimized
    optimized_module = compile_to_module(source, optimize=True)
    verify_module(optimized_module)
    optimized = Interpreter(optimized_module,
                            max_steps=2_000_000).run_main()
    assert optimized.stdout == plain.stdout
    # encode -> decode
    decoded = decode_module(encode_module(optimized_module))
    verify_module(decoded)
    roundtrip = Interpreter(decoded, max_steps=2_000_000).run_main()
    assert roundtrip.stdout == plain.stdout
    # bytecode baseline
    unit = parse_compilation_unit(source)
    world = analyze(unit)
    builder = UastBuilder(world)
    classes = compile_unit(world, {decl.info: builder.build_class(decl)
                                   for decl in unit.classes})
    bytecode = BytecodeInterpreter(classes, world,
                                   max_steps=2_000_000).run_main()
    assert bytecode.stdout == plain.stdout
    # consumer-side code generation
    from repro.interp.jit import JitCompiler
    jitted = JitCompiler(decoded).run_main()
    assert jitted.stdout == plain.stdout


@given(program())
@settings(max_examples=15, deadline=None)
def test_generated_programs_reencode_identically(source):
    module = compile_to_module(source)
    wire = encode_module(module)
    assert encode_module(decode_module(wire)) == wire


# ======================================================================
# wire-format mutation safety

@given(st.binary(min_size=0, max_size=300))
@settings(max_examples=60, deadline=None)
def test_arbitrary_bytes_never_yield_invalid_module(data):
    try:
        module = decode_module(data)
    except DecodeError:
        return
    verify_module(module)  # whatever decodes must verify


@given(st.integers(min_value=0), st.integers(min_value=1, max_value=255))
@settings(max_examples=80, deadline=None)
def test_single_byte_mutations_safe(position, xor):
    source = ("class T { static int f(int[] a, int i) "
              "{ return a[i] + a[i]; } }")
    module = compile_to_module(source, optimize=True)
    wire = bytearray(encode_module(module))
    wire[position % len(wire)] ^= xor
    try:
        mutated = decode_module(bytes(wire))
    except DecodeError:
        return
    verify_module(mutated)
