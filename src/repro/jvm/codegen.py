"""UAST -> JVM bytecode (the baseline compiler).

The output is shaped like javac's: comparisons fuse into conditional
branches, booleans materialise through the branch idiom, ``try`` bodies
get exception-table entries in clause order, multi-dimensional ``new``
becomes ``multianewarray``, and longs/doubles occupy two local slots.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.frontend.ast import LocalVar
from repro.jvm.opcodes import BRANCHES, Insn, NEWARRAY_ATYPE, insn_size
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PrimitiveType,
    Type,
    VOID,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World
from repro.uast import nodes as u


class CodegenError(Exception):
    pass


def _type_char(type: Type) -> str:
    """The mnemonic prefix letter for a type."""
    if isinstance(type, PrimitiveType):
        return {"int": "i", "long": "l", "float": "f", "double": "d",
                "boolean": "i", "char": "i", "void": "?"}[type.name]
    return "a"


def _slot_width(type: Type) -> int:
    return 2 if type in (LONG, DOUBLE) else 1


_ARRAY_SUFFIX = {"int": "ia", "long": "la", "float": "fa", "double": "da",
                 "boolean": "ba", "char": "ca"}


def _array_insn(elem: Type, load: bool) -> str:
    if isinstance(elem, PrimitiveType):
        prefix = _ARRAY_SUFFIX[elem.name]
    else:
        prefix = "aa"
    return prefix + ("load" if load else "store")


class CompiledMethod:
    """Bytecode for one method."""

    def __init__(self, info: ClassInfo, method: MethodInfo):
        self.class_info = info
        self.method = method
        self.insns: list[Insn] = []
        #: (start_index, end_index, handler_index, catch ClassInfo|None)
        self.exception_table: list[tuple[int, int, int, Optional[ClassInfo]]] = []
        self.max_locals = 0
        self.max_stack = 0
        #: label id -> instruction index (after layout)
        self.label_index: dict[int, int] = {}

    def instruction_count(self) -> int:
        return len(self.insns)

    def code_size(self) -> int:
        return sum(insn_size(insn) for insn in self.insns)

    def layout(self) -> None:
        """Assign byte offsets to every instruction."""
        offset = 0
        for insn in self.insns:
            insn.offset = offset
            offset += insn_size(insn)


class CompiledClass:
    def __init__(self, info: ClassInfo):
        self.info = info
        self.methods: list[CompiledMethod] = []

    def instruction_count(self) -> int:
        return sum(m.instruction_count() for m in self.methods)


class _MethodCompiler:
    def __init__(self, world: World, info: ClassInfo, umethod: u.UMethod):
        self.world = world
        self.info = info
        self.umethod = umethod
        self.out = CompiledMethod(info, umethod.method)
        self.slots: dict[LocalVar, int] = {}
        self.next_slot = 0
        self._labels = itertools.count(1)
        #: raw (insn-or-label) stream; labels resolved in _finish
        self.stream: list = []
        self.break_labels: dict[int, int] = {}
        self.continue_labels: dict[int, int] = {}
        #: pending exception regions: (start_marker, entries)
        self.exc_entries: list[tuple[object, object, object,
                                     Optional[ClassInfo]]] = []

    # ------------------------------------------------------------------

    def compile(self) -> CompiledMethod:
        method = self.umethod.method
        if not method.is_static:
            self._reserve_this()
        for var in self.umethod.locals:
            if var.is_param:
                self._slot(var)
        self.stmt(self.umethod.body)
        if method.return_type is VOID:
            self.emit("return")
        self._finish()
        return self.out

    def _reserve_this(self) -> None:
        this_var = self.umethod.locals[0]
        self.slots[this_var] = 0
        self.next_slot = 1

    def _slot(self, var: LocalVar) -> int:
        slot = self.slots.get(var)
        if slot is None:
            slot = self.next_slot
            self.slots[var] = slot
            self.next_slot += _slot_width(var.type)
        return slot

    def new_label(self) -> int:
        return next(self._labels)

    def emit(self, op: str, *args) -> Insn:
        insn = Insn(op, *args)
        self.stream.append(insn)
        return insn

    def mark(self, label: int) -> None:
        self.stream.append(("label", label))

    def _finish(self) -> None:
        """Resolve labels to instruction indices and fix the tables."""
        label_index: dict[int, int] = {}
        insns: list[Insn] = []
        marker_index: dict[int, int] = {}
        for item in self.stream:
            if isinstance(item, tuple) and item[0] == "label":
                label_index[item[1]] = len(insns)
            elif isinstance(item, tuple) and item[0] == "marker":
                marker_index[item[1]] = len(insns)
            else:
                insns.append(item)
        for insn in insns:
            if insn.op in BRANCHES:
                target = label_index.get(insn.args[0])
                if target is None:
                    raise CodegenError(f"unresolved label {insn.args[0]}")
                insn.args = (target,)
        table = []
        for start, end, handler, catch in self.exc_entries:
            table.append((marker_index[start], marker_index[end],
                          label_index[handler], catch))
        self.out.insns = insns
        self.out.exception_table = table
        self.out.label_index = label_index
        self.out.max_locals = max(self.next_slot, 1)
        self.out.max_stack = _estimate_max_stack(insns, table)
        self.out.layout()

    def _marker(self) -> int:
        marker = next(self._labels)
        self.stream.append(("marker", marker))
        return marker

    # ==================================================================
    # statements

    def stmt(self, stmt: u.UStmt) -> None:
        handler = getattr(self, "_stmt_" + type(stmt).__name__.lower(), None)
        if handler is None:
            raise CodegenError(f"cannot compile {type(stmt).__name__}")
        handler(stmt)

    def _stmt_sblock(self, stmt: u.SBlock) -> None:
        for inner in stmt.stmts:
            self.stmt(inner)

    def _stmt_slocalwrite(self, stmt: u.SLocalWrite) -> None:
        self.expr(stmt.value)
        prefix = _type_char(stmt.local.type)
        self.emit(prefix + "store", self._slot(stmt.local))

    def _stmt_sfieldwrite(self, stmt: u.SFieldWrite) -> None:
        self.expr(stmt.obj)
        self.expr(stmt.value)
        self.emit("putfield", stmt.field)

    def _stmt_sstaticwrite(self, stmt: u.SStaticWrite) -> None:
        self.expr(stmt.value)
        self.emit("putstatic", stmt.field)

    def _stmt_sarraywrite(self, stmt: u.SArrayWrite) -> None:
        self.expr(stmt.array)
        self.expr(stmt.index)
        self.expr(stmt.value)
        elem = stmt.array.type.element
        self.emit(_array_insn(elem, load=False))

    def _stmt_seval(self, stmt: u.SEval) -> None:
        self.expr(stmt.expr)
        result = stmt.expr.type
        if result is VOID or result is None:
            return
        self.emit("pop2" if _slot_width(result) == 2 else "pop")

    def _stmt_sif(self, stmt: u.SIf) -> None:
        else_label = self.new_label()
        end_label = self.new_label()
        self.branch(stmt.cond, else_label, jump_if=False)
        self.stmt(stmt.then_body)
        if stmt.else_body is not None:
            self.emit("goto", end_label)
            self.mark(else_label)
            self.stmt(stmt.else_body)
            self.mark(end_label)
        else:
            self.mark(else_label)

    def _stmt_swhile(self, stmt: u.SWhile) -> None:
        head = self.new_label()
        exit_label = self.new_label()
        self.break_labels[stmt.break_id] = exit_label
        self.continue_labels[stmt.continue_id] = head
        self.mark(head)
        is_true = isinstance(stmt.cond, u.EConst) and stmt.cond.value is True
        if not is_true:
            self.branch(stmt.cond, exit_label, jump_if=False)
        self.stmt(stmt.body)
        self.emit("goto", head)
        self.mark(exit_label)

    def _stmt_sdowhile(self, stmt: u.SDoWhile) -> None:
        head = self.new_label()
        cond_label = self.new_label()
        exit_label = self.new_label()
        self.break_labels[stmt.break_id] = exit_label
        self.continue_labels[stmt.continue_id] = cond_label
        self.mark(head)
        self.stmt(stmt.body)
        self.mark(cond_label)
        self.branch(stmt.cond, head, jump_if=True)
        self.mark(exit_label)

    def _stmt_slabeled(self, stmt: u.SLabeled) -> None:
        exit_label = self.new_label()
        self.break_labels[stmt.target_id] = exit_label
        self.stmt(stmt.body)
        self.mark(exit_label)

    def _stmt_sbreak(self, stmt: u.SBreak) -> None:
        self.emit("goto", self.break_labels[stmt.target_id])

    def _stmt_scontinue(self, stmt: u.SContinue) -> None:
        self.emit("goto", self.continue_labels[stmt.target_id])

    def _stmt_sreturn(self, stmt: u.SReturn) -> None:
        if stmt.value is None:
            self.emit("return")
        else:
            self.expr(stmt.value)
            self.emit(_type_char(stmt.value.type) + "return")

    def _stmt_sthrow(self, stmt: u.SThrow) -> None:
        self.expr(stmt.value)
        self.emit("athrow")

    def _stmt_stry(self, stmt: u.STry) -> None:
        start = self._marker()
        self.stmt(stmt.body)
        end = self._marker()
        end_label = self.new_label()
        self.emit("goto", end_label)
        for catch in stmt.catches:
            handler = self.new_label()
            self.mark(handler)
            self.emit("astore", self._slot(catch.local))
            self.stmt(catch.body)
            self.emit("goto", end_label)
            self.exc_entries.append((start, end, handler,
                                     catch.catch_class))
        self.mark(end_label)

    # ==================================================================
    # conditions (fused branches, javac style)

    _CMP_BRANCH = {"eq": "eq", "ne": "ne", "lt": "lt", "le": "le",
                   "gt": "gt", "ge": "ge"}
    _NEGATE = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
               "gt": "le", "le": "gt"}

    def branch(self, cond: u.UExpr, target: int, jump_if: bool) -> None:
        """Emit a conditional jump to ``target`` when ``cond == jump_if``."""
        if isinstance(cond, u.EConst):
            if bool(cond.value) == jump_if:
                self.emit("goto", target)
            return
        if isinstance(cond, u.EPrim):
            operation = cond.operation
            name = operation.name
            if name == "not":
                self.branch(cond.args[0], target, not jump_if)
                return
            if name in self._CMP_BRANCH and len(cond.args) == 2:
                base = operation.base
                sense = name if jump_if else self._NEGATE[name]
                left, right = cond.args
                if base in (INT, CHAR, BOOLEAN):
                    if isinstance(right, u.EConst) and right.value == 0 \
                            and base is INT:
                        self.expr(left)
                        self.emit("if" + sense, target)
                    else:
                        self.expr(left)
                        self.expr(right)
                        self.emit("if_icmp" + sense, target)
                    return
                self.expr(left)
                self.expr(right)
                if base is LONG:
                    self.emit("lcmp")
                elif base is FLOAT:
                    self.emit("fcmpl" if name in ("gt", "ge") else "fcmpg")
                else:
                    self.emit("dcmpl" if name in ("gt", "ge") else "dcmpg")
                self.emit("if" + sense, target)
                return
        if isinstance(cond, u.ERefCmp):
            sense = ("eq" if cond.is_eq else "ne") if jump_if \
                else ("ne" if cond.is_eq else "eq")
            left, right = cond.left, cond.right
            if isinstance(right, u.EConst) and right.value is None:
                self.expr(left)
                self.emit("ifnull" if sense == "eq" else "ifnonnull", target)
                return
            if isinstance(left, u.EConst) and left.value is None:
                self.expr(right)
                self.emit("ifnull" if sense == "eq" else "ifnonnull", target)
                return
            self.expr(left)
            self.expr(right)
            self.emit("if_acmp" + sense, target)
            return
        # general boolean value
        self.expr(cond)
        self.emit("ifne" if jump_if else "ifeq", target)

    # ==================================================================
    # expressions

    def expr(self, expr: u.UExpr) -> None:
        handler = getattr(self, "_expr_" + type(expr).__name__.lower(), None)
        if handler is None:
            raise CodegenError(f"cannot compile {type(expr).__name__}")
        handler(expr)

    def _expr_econst(self, expr: u.EConst) -> None:
        type, value = expr.type, expr.value
        if type is INT or type is CHAR:
            self.emit("iconst", value)
        elif type is BOOLEAN:
            self.emit("iconst", 1 if value else 0)
        elif type is LONG:
            self.emit("lconst", value)
        elif type is FLOAT:
            self.emit("fconst", value)
        elif type is DOUBLE:
            self.emit("dconst", value)
        elif value is None:
            self.emit("aconst_null")
        elif isinstance(value, str):
            self.emit("ldc_string", value)
        else:
            raise CodegenError(f"bad constant {value!r}")

    def _expr_elocal(self, expr: u.ELocal) -> None:
        self.emit(_type_char(expr.local.type) + "load",
                  self._slot(expr.local))

    def _expr_egetfield(self, expr: u.EGetField) -> None:
        self.expr(expr.obj)
        self.emit("getfield", expr.field)

    def _expr_egetstatic(self, expr: u.EGetStatic) -> None:
        self.emit("getstatic", expr.field)

    def _expr_earrayget(self, expr: u.EArrayGet) -> None:
        self.expr(expr.array)
        self.expr(expr.index)
        self.emit(_array_insn(expr.type, load=True))

    def _expr_earraylen(self, expr: u.EArrayLen) -> None:
        self.expr(expr.array)
        self.emit("arraylength")

    _PRIM_DIRECT = {
        "add": "add", "sub": "sub", "mul": "mul", "div": "div",
        "rem": "rem", "neg": "neg", "shl": "shl", "shr": "shr",
        "ushr": "ushr", "and": "and", "or": "or", "xor": "xor",
    }
    _CONVERSIONS = {
        ("int", "to_long"): "i2l", ("int", "to_float"): "i2f",
        ("int", "to_double"): "i2d", ("int", "to_char"): "i2c",
        ("long", "to_int"): "l2i", ("long", "to_float"): "l2f",
        ("long", "to_double"): "l2d",
        ("float", "to_int"): "f2i", ("float", "to_long"): "f2l",
        ("float", "to_double"): "f2d",
        ("double", "to_int"): "d2i", ("double", "to_long"): "d2l",
        ("double", "to_float"): "d2f",
    }

    def _expr_eprim(self, expr: u.EPrim) -> None:
        operation = expr.operation
        base, name = operation.base, operation.name
        key = (base.name, name)
        if key in self._CONVERSIONS:
            self.expr(expr.args[0])
            self.emit(self._CONVERSIONS[key])
            return
        if base is CHAR and name == "to_int":
            self.expr(expr.args[0])  # chars already sit as ints
            return
        if base is BOOLEAN:
            if name == "not":
                self.expr(expr.args[0])
                self.emit("iconst", 1)
                self.emit("ixor")
                return
            if name in ("and", "or", "xor"):
                self.expr(expr.args[0])
                self.expr(expr.args[1])
                self.emit("i" + name)
                return
            # eq/ne on booleans fall through to the comparison idiom
        if name in self._CMP_BRANCH:
            self._materialize_comparison(expr)
            return
        if name == "compl":
            self.expr(expr.args[0])
            if base is LONG:
                self.emit("lconst", -1)
                self.emit("lxor")
            else:
                self.emit("iconst", -1)
                self.emit("ixor")
            return
        direct = self._PRIM_DIRECT.get(name)
        if direct is None:
            raise CodegenError(f"no bytecode for {operation.qualified_name}")
        for arg in expr.args:
            self.expr(arg)
        self.emit(_type_char(base) + direct)

    def _materialize_comparison(self, expr: u.UExpr) -> None:
        """Boolean-valued comparison via the branch idiom (javac style)."""
        true_label = self.new_label()
        end_label = self.new_label()
        self.branch(expr, true_label, jump_if=True)
        self.emit("iconst", 0)
        self.emit("goto", end_label)
        self.mark(true_label)
        self.emit("iconst", 1)
        self.mark(end_label)

    def _expr_erefcmp(self, expr: u.ERefCmp) -> None:
        self._materialize_comparison(expr)

    def _expr_ecall(self, expr: u.ECall) -> None:
        if expr.receiver is not None:
            self.expr(expr.receiver)
        for arg in expr.args:
            self.expr(arg)
        method = expr.method
        if method.is_static:
            self.emit("invokestatic", method)
        elif expr.dispatch:
            self.emit("invokevirtual", method)
        else:
            self.emit("invokespecial", method)

    def _expr_enew(self, expr: u.ENew) -> None:
        self.emit("new", expr.class_info)
        self.emit("dup")
        for arg in expr.args:
            self.expr(arg)
        self.emit("invokespecial", expr.ctor)

    def _expr_enewarray(self, expr: u.ENewArray) -> None:
        self.expr(expr.length)
        elem = expr.array_type.element
        if isinstance(elem, PrimitiveType):
            self.emit("newarray", NEWARRAY_ATYPE[elem.name])
        else:
            self.emit("anewarray", elem)

    def _expr_enewmultiarray(self, expr: u.ENewMultiArray) -> None:
        for dim in expr.dims:
            self.expr(dim)
        self.emit("multianewarray", expr.array_type, len(expr.dims))

    def _expr_einstanceof(self, expr: u.EInstanceOf) -> None:
        self.expr(expr.operand)
        self.emit("instanceof", expr.target_type)

    def _expr_echeckedcast(self, expr: u.ECheckedCast) -> None:
        self.expr(expr.operand)
        self.emit("checkcast", expr.type)

    def _expr_ewidenref(self, expr: u.EWidenRef) -> None:
        self.expr(expr.operand)  # no bytecode needed


def _stack_delta(insn: Insn) -> int:
    """Approximate operand-stack word delta (for max_stack estimation)."""
    op = insn.op
    if op in ("iconst", "fconst", "ldc_string", "aconst_null", "dup",
              "dup_x1", "dup_x2", "iload", "fload", "aload", "new",
              "getstatic"):
        return 2 if op == "getstatic" else 1
    if op in ("lconst", "dconst", "lload", "dload", "dup2"):
        return 2
    if op.endswith("return") or op == "athrow":
        return 0
    simple = {
        "pop": -1, "pop2": -2, "swap": 0, "arraylength": 0, "nop": 0,
        "iinc": 0, "goto": 0,
    }
    if op in simple:
        return simple[op]
    return 1  # conservative default


def _estimate_max_stack(insns, exception_table) -> int:
    depth = 0
    highest = 2
    for insn in insns:
        depth = max(0, depth + _stack_delta(insn))
        highest = max(highest, depth)
    return min(highest + 2, 64)


def compile_method(world: World, info: ClassInfo,
                   umethod: u.UMethod) -> CompiledMethod:
    return _MethodCompiler(world, info, umethod).compile()


def compile_unit(world: World,
                 per_class: dict[ClassInfo, list[u.UMethod]]
                 ) -> list[CompiledClass]:
    """Compile every class's UAST methods to bytecode."""
    compiled = []
    for info, umethods in per_class.items():
        cls = CompiledClass(info)
        for umethod in umethods:
            cls.methods.append(compile_method(world, info, umethod))
        compiled.append(cls)
    return compiled
