"""E2 -- paper Figure 6: phi / null-check / array-check reductions.

The paper reports, from producer-side optimisation alone:

* null-checks: -13% .. -73% per class ("in most cases 30% fewer");
* array-checks: up to -38%, concentrated in array-heavy classes, N/A in
  most others;
* phi instructions: -9% .. -50% per class.
"""

from __future__ import annotations

from benchmarks.conftest import totals
from repro.bench.corpus import corpus_source
from repro.bench.tables import figure6_table
from repro.opt.pipeline import optimize_module
from repro.pipeline import compile_to_module


def test_figure6_shape(corpus_rows):
    print()
    print(figure6_table(corpus_rows))
    total = totals(corpus_rows, "nullchecks_before", "nullchecks_after",
                   "idxchecks_before", "idxchecks_after",
                   "phis_before", "phis_after")
    null_reduction = 1 - total["nullchecks_after"] / total["nullchecks_before"]
    assert null_reduction > 0.25, \
        f"null-check reduction {null_reduction:.1%} below the paper's band"
    idx_reduction = 1 - total["idxchecks_after"] / total["idxchecks_before"]
    assert idx_reduction > 0.05, \
        f"array-check reduction {idx_reduction:.1%} out of shape"
    assert total["phis_after"] <= total["phis_before"]


def test_figure6_null_checks_drop_in_every_oo_class(corpus_rows):
    """Classes with enough field traffic all lose null checks."""
    for row in corpus_rows:
        if row.nullchecks_before >= 10:
            assert row.nullchecks_after < row.nullchecks_before, \
                row.class_name


def test_figure6_array_checks_drop_in_linpack(corpus_rows):
    """The paper highlights Linpack's array-check elimination (-19%)."""
    linpack = next(row for row in corpus_rows
                   if row.class_name == "Linpack")
    reduction = 1 - linpack.idxchecks_after / linpack.idxchecks_before
    assert reduction > 0.15, f"Linpack array checks only {reduction:.1%}"


def test_figure6_checks_never_increase(corpus_rows):
    for row in corpus_rows:
        assert row.nullchecks_after <= row.nullchecks_before, row.class_name
        assert row.idxchecks_after <= row.idxchecks_before, row.class_name


def test_optimizer_throughput_benchmark(benchmark):
    """Timing: the optimisation pipeline alone on BigInt."""
    source = corpus_source("BigInt")

    def run():
        module = compile_to_module(source)
        optimize_module(module)
        return module

    module = benchmark(run)
    assert module.count_opcodes("nullcheck") > 0
