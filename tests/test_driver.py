"""The unified compile path: CompilationSession, PassManager,
AnalysisManager, pipeline-spec grammar, cache-key coverage, and the
parallel-vs-serial determinism guarantee."""

import pytest
from hypothesis import given, settings

from repro.analysis.manager import AnalysisManager
from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.cache import CompilationCache
from repro.driver import (
    ALL_PASSES,
    CANONICAL_SPEC,
    DEFAULT_PASSES,
    CompilationSession,
    PASS_REGISTRY,
    PassManager,
    PassReport,
    merge_stats,
    parse_pass_spec,
    spec_string,
)
from repro.driver.passes import effective_passes
from repro.pipeline import (
    PIPELINE_FLAG_DEFAULTS,
    compile_to_module,
    pipeline_cache_key,
)
from repro.fuzz.gen import program_strategy


def program():
    """Source-text strategy over the shared fuzz grammar."""
    return program_strategy().map(lambda generated: generated.source)

SOURCE = """
class Main {
  static int f(int n) {
    int total = 0;
    int i = 0;
    while (i < n) { total = total + i * 2 + 3 * 4; i = i + 1; }
    return total;
  }
  static void main() { System.out.println(f(10)); }
}
"""


class TestPassSpecGrammar:
    def test_none_selects_default_pipeline(self):
        assert parse_pass_spec(None) == DEFAULT_PASSES

    def test_string_spec_round_trips(self):
        assert parse_pass_spec(CANONICAL_SPEC) == DEFAULT_PASSES
        assert spec_string(parse_pass_spec(CANONICAL_SPEC)) \
            == CANONICAL_SPEC

    def test_empty_string_is_explicit_noop(self):
        assert parse_pass_spec("") == ()
        assert parse_pass_spec(()) == ()

    def test_whitespace_and_order_normalize(self):
        assert parse_pass_spec(" dce , constprop ") \
            == ("constprop", "dce")
        assert parse_pass_spec(["cleanup", "constprop"]) \
            == ("constprop", "cleanup")

    def test_cse_fields_wins_its_slot(self):
        assert parse_pass_spec("cse,cse_fields") == ("cse_fields",)
        assert parse_pass_spec("cse_fields,cse") == ("cse_fields",)
        assert parse_pass_spec("cse") == ("cse",)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown pass"):
            parse_pass_spec("constprop,typo")

    def test_effective_passes(self):
        assert effective_passes(False, None) == ()
        assert effective_passes(True, None) == DEFAULT_PASSES
        # an explicit spec always wins over the optimize flag
        assert effective_passes(True, "dce") == ("dce",)
        assert effective_passes(True, "") == ()

    def test_registry_metadata(self):
        assert set(PASS_REGISTRY) \
            == {"constprop", "safephi", "hoist_checks", "licm", "cse",
                "cse_fields", "dce", "cleanup"}
        assert "domtree" in PASS_REGISTRY["cse"].requires
        assert "observable" in PASS_REGISTRY["dce"].preserves


class TestMergeStats:
    def test_int_counters_accumulate(self):
        stats = {"eliminated": 2}
        merge_stats(stats, {"eliminated": 3})
        assert stats["eliminated"] == 5

    def test_bools_overwrite_not_accumulate(self):
        # regression: isinstance(True, int) is true, so the old merge
        # summed two `flag: True` reports into the counter 2
        stats = {"flag": True}
        merge_stats(stats, {"flag": True})
        assert stats["flag"] is True
        merge_stats(stats, {"flag": False})
        assert stats["flag"] is False

    def test_bool_never_sums_into_int(self):
        stats = {"count": 2}
        merge_stats(stats, {"count": True})
        assert stats["count"] is True

    def test_pass_report_merge_preserves_bools(self):
        report = PassReport("f")
        report.record("a", {"flag": True, "n": 1}, 0.0)
        report.record("b", {"flag": True, "n": 2}, 0.0)
        assert report.stats == {"flag": True, "n": 3}

    def test_report_equality_ignores_seconds(self):
        fast, slow = PassReport("f"), PassReport("f")
        fast.record("dce", {"removed": 1}, 0.001)
        slow.record("dce", {"removed": 1}, 9.999)
        assert fast == slow
        other = PassReport("f")
        other.record("dce", {"removed": 2}, 0.001)
        assert fast != other


class TestCacheKeyCoverage:
    def test_unknown_flag_raises_type_error(self):
        # regression: a misspelled flag used to mint a key that never
        # hits, silently disabling the cache for that caller
        cache = CompilationCache()
        with pytest.raises(TypeError, match="optimise"):
            pipeline_cache_key(cache, SOURCE, optimise=True)

    def test_known_flags_accepted(self):
        cache = CompilationCache()
        for flag, default in PIPELINE_FLAG_DEFAULTS.items():
            assert pipeline_cache_key(cache, SOURCE, **{flag: default}) \
                == pipeline_cache_key(cache, SOURCE)

    def test_distinct_pass_specs_distinct_keys(self):
        cache = CompilationCache()
        keys = {
            pipeline_cache_key(cache, SOURCE),
            pipeline_cache_key(cache, SOURCE, optimize=True),
            pipeline_cache_key(cache, SOURCE, passes="constprop"),
            pipeline_cache_key(cache, SOURCE, passes="constprop,dce"),
            pipeline_cache_key(cache, SOURCE, passes="cse_fields"),
        }
        assert len(keys) == 5

    def test_spec_aliases_share_a_key(self):
        cache = CompilationCache()
        # optimize=True IS the canonical spec; order does not matter
        assert pipeline_cache_key(cache, SOURCE, optimize=True) \
            == pipeline_cache_key(cache, SOURCE, passes=CANONICAL_SPEC)
        assert pipeline_cache_key(cache, SOURCE, passes="dce,constprop") \
            == pipeline_cache_key(cache, SOURCE, passes="constprop,dce")
        # explicit no-op pipeline == the unoptimized default
        assert pipeline_cache_key(cache, SOURCE, passes="") \
            == pipeline_cache_key(cache, SOURCE)

    def test_unoptimized_entry_never_served_for_optimized_compile(self):
        cache = CompilationCache()
        plain = compile_to_module(SOURCE, cache=cache)
        optimized = compile_to_module(SOURCE, optimize=True, cache=cache)
        assert optimized.instruction_count() \
            < plain.instruction_count()
        # both forms landed under their own keys; a rerun hits each
        assert cache.misses == 2
        rerun = compile_to_module(SOURCE, optimize=True, cache=cache)
        assert cache.hits == 1
        assert rerun.instruction_count() == optimized.instruction_count()


class TestAnalysisManager:
    def _function(self, optimize=False):
        module = compile_to_module(SOURCE, optimize=optimize, cache=False)
        return module, next(iter(module.functions.values()))

    def test_results_are_cached(self):
        _, function = self._function()
        analyses = AnalysisManager()
        first = analyses.get("domtree", function)
        second = analyses.get("domtree", function)
        assert first is second
        assert analyses.computed == 1 and analyses.hits == 1
        assert analyses.consumers_per_computed == 2.0

    def test_unknown_analysis_raises(self):
        _, function = self._function()
        with pytest.raises(KeyError, match="unknown analysis"):
            AnalysisManager().get("typo", function)

    def test_invalidate_respects_preserved(self):
        _, function = self._function()
        analyses = AnalysisManager()
        domtree = analyses.get("domtree", function)
        analyses.get("observable", function)
        analyses.invalidate(function, preserved=frozenset({"domtree"}))
        assert analyses.cached("domtree", function) is domtree
        assert analyses.cached("observable", function) is None
        assert analyses.invalidations == 1

    def test_zero_change_pass_preserves_everything(self):
        # a pass whose stats are all falsy reports "nothing happened"
        assert PASS_REGISTRY["cleanup"].preserved_after(
            {"stale_exc_edges": 0, "dead_handlers": 0}) is None

    def test_cfg_change_drops_domtree(self):
        preserved = PASS_REGISTRY["cse"].preserved_after(
            {"cse_eliminated": 1, "stale_exc_edges": 2})
        assert preserved is not None and "domtree" not in preserved

    def test_pass_manager_reuses_analyses_across_consumers(self):
        module, _ = self._function()
        analyses = AnalysisManager()
        PassManager().run_module(module, analyses=analyses)
        from repro.tsa.verifier import verify_module
        verify_module(module, analyses=analyses)
        from repro.encode.serializer import encode_module
        encode_module(module, analyses=analyses)
        assert analyses.hits > 0
        assert analyses.consumers_per_computed >= 2.0


class TestCompilationSession:
    def test_frontend_shared_between_module_and_classfiles(self):
        session = CompilationSession(optimize=True, cache=False)
        module = session.build_module(SOURCE)
        classfiles = session.compile_to_classfiles(SOURCE)
        assert len(session._frontend_memo) == 1
        assert module.functions and classfiles
        # the two pipelines agree on what was compiled
        assert {cls.info.name for cls in classfiles} \
            == {info.name for info in module.classes}

    def test_session_matches_legacy_wrapper(self):
        from repro.encode.serializer import encode_module
        legacy = compile_to_module(SOURCE, optimize=True, cache=False)
        session = CompilationSession(optimize=True, cache=False)
        module = session.compile(SOURCE)
        assert encode_module(module) == encode_module(legacy)

    def test_stage_seconds_and_reports(self):
        session = CompilationSession(optimize=True, cache=False)
        session.compile(SOURCE)
        assert set(session.stage_seconds) == {"parse", "ssa", "opt"}
        report = session.pass_report()
        assert report["spec"] == CANONICAL_SPEC
        assert set(report["pass_seconds"]) == set(DEFAULT_PASSES)
        assert report["functions"] == len(session.reports) > 0

    def test_compile_cache_covers_pass_spec(self):
        cache = CompilationCache()
        noop = CompilationSession(passes="", cache=cache)
        noop.compile(SOURCE)
        optimized = CompilationSession(optimize=True, cache=cache)
        module = optimized.compile(SOURCE)
        # the cached no-op module must not be served for -O
        assert cache.hits == 0 and cache.misses == 2
        full = compile_to_module(SOURCE, optimize=True, cache=False)
        assert module.instruction_count() == full.instruction_count()


def _session_artifacts(source, jobs):
    """(encoded bytes, deterministic report dicts) for one compile."""
    session = CompilationSession(optimize=True, cache=False, jobs=jobs)
    module = session.build_module(source)
    session.optimize(module)
    wire = session.encode(module)
    return wire, [r.as_dict(seconds=False) for r in session.reports]


class TestParallelDeterminism:
    @pytest.mark.parametrize("name", CORPUS_PROGRAMS)
    def test_corpus_parallel_equals_serial(self, name):
        source = corpus_source(name)
        serial_wire, serial_reports = _session_artifacts(source, jobs=1)
        parallel_wire, parallel_reports = _session_artifacts(source,
                                                             jobs=4)
        assert parallel_wire == serial_wire
        assert parallel_reports == serial_reports

    @pytest.mark.parametrize("name", CORPUS_PROGRAMS)
    def test_corpus_plain_form_stable_too(self, name):
        # the transmitted unoptimized form has no passes to fan out,
        # but must still be byte-stable across session configurations
        source = corpus_source(name)
        serial = CompilationSession(prune_phis=False, cache=False,
                                    jobs=1)
        parallel = CompilationSession(prune_phis=False, cache=False,
                                      jobs=4)
        assert serial.encode(serial.compile(source)) \
            == parallel.encode(parallel.compile(source))

    @settings(max_examples=15, deadline=None)
    @given(source=program())
    def test_random_programs_parallel_equals_serial(self, source):
        serial_wire, serial_reports = _session_artifacts(source, jobs=1)
        parallel_wire, parallel_reports = _session_artifacts(source,
                                                             jobs=3)
        assert parallel_wire == serial_wire
        assert parallel_reports == serial_reports

    def test_rebuild_is_bit_identical_under_heap_churn(self):
        # Regression: SSA construction memoized assigned-variable sets
        # by id(node); do-while/for lowering builds throwaway synthetic
        # UAST nodes, so a recycled address could return the previous
        # node's variable set and insert (or skip) eager loop-header
        # phis depending on heap layout.  Compiling other loop-heavy
        # modules between rebuilds primes the allocator with reusable
        # UAST-sized blocks; before the fix the wire bytes diverged
        # within a handful of trials.  The source is the hypothesis
        # counterexample pinned in test_properties, kept byte-exact:
        # reformatting changes the allocation pattern enough to mask
        # the recycling.
        import gc
        import random

        source = 'class Shape {\n    int tag;\n    int weigh(int x) { return ((tag <= tag) ? x : x); }\n}\nclass Ring extends Shape {\n    int weigh(int x) { return (tag % (x | 1)); }\n}\nclass Main {\n    static int h(int x) {\n        int a = x; int b = x - 1; int c = 7;\n        return ((-20 - a) | a);\n    }\n    static void main() {\n        int a = -96;\n        int b = 82;\n        int c = 78;\n        int[] arr = new int[8];\n        for (int f0 = 0; f0 < 8; f0++) {\n            arr[f0] = f0 * 5 + 3;\n        }\n        Shape s = new Shape();\n        s.tag = -12;\n        switch (a & 3) { case 0: a = 1; case 1: a = 2; break; case 2: arr[(1 & 7)] = -57; break; default: a = 15; }\n        { int d1 = 2; do { d1 = d1 - 1; for (int lo2 = 0; lo2 < 4; lo2++) { for (int ln3 = 0; ln3 < arr.length; ln3++) { c = c + arr[lo2 & 7]; } arr[lo2 & 7] = c; } } while (d1 > 0); }\n        c = (-83 % ((a * ((c > 0) ? b : a)) | 1));\n        for (int lo4 = 0; lo4 < 3; lo4++) { for (int ln5 = 0; ln5 < arr.length; ln5++) { b = b + arr[lo4 & 7]; } arr[lo4 & 7] = b; }\n        int sum = 0;\n        for (int f1 = 0; f1 < 8; f1++) { sum += arr[f1]; }\n        System.out.println(a + " " + b + " " + c + " " + sum\n                           + " " + s.weigh(a) + " " + s.tag);\n    }\n}\n'

        def build(jobs=None):
            session = CompilationSession(optimize=True, cache=False,
                                         jobs=jobs)
            module = session.build_module(source)
            session.optimize(module)
            return session.encode(module)

        churn = ["class A%d { static int f(int x) { int y = x; "
                 "do { y = y - 1; } while (y > 0); return y; } }" % i
                 for i in range(6)]
        reference = build()
        rng = random.Random(3)
        junk = []
        for trial in range(40):
            filler = CompilationSession(optimize=(trial % 3 == 0),
                                        cache=False)
            filler.compile(churn[trial % len(churn)])
            junk.append(bytearray(rng.randrange(64, 4096)))
            if trial % 5 == 4:
                junk.clear()
                gc.collect()
            assert build(jobs=2 if trial % 2 else None) == reference, \
                f"rebuild diverged at trial {trial}"


class TestLegacyWrappers:
    def test_optimize_function_flat_stats_shape(self):
        from repro.opt.pipeline import optimize_function
        module = compile_to_module(SOURCE, cache=False)
        function = next(iter(module.functions.values()))
        stats = optimize_function(function)
        assert stats["function"] == function.name
        assert "constprop_folded" in stats

    def test_pass_functions_alias_driver_steps(self):
        from repro.driver.passes import STEP_FUNCTIONS
        from repro.opt import pipeline as opt_pipeline
        assert opt_pipeline.PASS_FUNCTIONS is STEP_FUNCTIONS

    def test_monkeypatched_step_called_without_analyses(self, monkeypatch):
        # the historical sabotage contract: a patched step that only
        # accepts (function,) must keep working under the new manager
        from repro.opt import pipeline as opt_pipeline
        calls = []

        def patched(function):
            calls.append(function.name)
            return {"patched": 1}

        monkeypatch.setitem(opt_pipeline.PASS_FUNCTIONS, "dce", patched)
        session = CompilationSession(optimize=True, cache=False)
        module = session.build_module(SOURCE)
        session.optimize(module)
        assert len(calls) == len(module.functions)
        merged = {}
        for report in session.reports:
            merged.update(report.stats)
        assert merged.get("patched") == 1
