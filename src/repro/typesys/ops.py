"""Per-type operation tables (paper Section 5).

In SafeTSA, primitive operations are *subordinate to types*: an instruction
names a base type (a symbolic reference into the type table) and an
operation defined on that type.  Operations that may raise an exception
(integer divide, for example) are classified as ``xprimitive``; all others
are ``primitive``.  The classification is part of the implicitly generated
operation table, so a malicious producer cannot reclassify a trapping
operation as non-trapping.

Every operation carries an executable ``fold`` implementing exact Java
semantics; it is shared by the constant folder and by both interpreters.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import jmath
from repro.typesys.types import (
    BOOLEAN,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PrimitiveType,
    Type,
)


class Operation:
    """A single operation in some type's operation table."""

    def __init__(self, base: PrimitiveType, name: str, params: list[Type],
                 result: Type, fold: Callable, traps: bool = False,
                 commutative: bool = False):
        self.base = base
        self.name = name
        self.params = params
        self.result = result
        self.fold = fold
        #: True => must be referenced via ``xprimitive``
        self.traps = traps
        #: True => CSE may normalise operand order
        self.commutative = commutative
        #: index within the base type's table (stable; used for encoding)
        self.index: int = -1

    @property
    def qualified_name(self) -> str:
        return f"{self.base}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        kind = "xprimitive" if self.traps else "primitive"
        return f"<{kind} {self.qualified_name}>"


def _int_ops() -> list[Operation]:
    i = jmath.i32
    return [
        Operation(INT, "add", [INT, INT], INT, lambda a, b: i(a + b), commutative=True),
        Operation(INT, "sub", [INT, INT], INT, lambda a, b: i(a - b)),
        Operation(INT, "mul", [INT, INT], INT, lambda a, b: i(a * b), commutative=True),
        Operation(INT, "div", [INT, INT], INT, lambda a, b: i(jmath.idiv(a, b)), traps=True),
        Operation(INT, "rem", [INT, INT], INT, lambda a, b: i(jmath.irem(a, b)), traps=True),
        Operation(INT, "neg", [INT], INT, lambda a: i(-a)),
        Operation(INT, "shl", [INT, INT], INT, lambda a, b: jmath.ishl(a, b, 32)),
        Operation(INT, "shr", [INT, INT], INT, lambda a, b: jmath.ishr(a, b, 32)),
        Operation(INT, "ushr", [INT, INT], INT, lambda a, b: jmath.iushr(a, b, 32)),
        Operation(INT, "and", [INT, INT], INT, lambda a, b: a & b, commutative=True),
        Operation(INT, "or", [INT, INT], INT, lambda a, b: a | b, commutative=True),
        Operation(INT, "xor", [INT, INT], INT, lambda a, b: a ^ b, commutative=True),
        Operation(INT, "compl", [INT], INT, lambda a: i(~a)),
        Operation(INT, "lt", [INT, INT], BOOLEAN, lambda a, b: a < b),
        Operation(INT, "le", [INT, INT], BOOLEAN, lambda a, b: a <= b),
        Operation(INT, "gt", [INT, INT], BOOLEAN, lambda a, b: a > b),
        Operation(INT, "ge", [INT, INT], BOOLEAN, lambda a, b: a >= b),
        Operation(INT, "eq", [INT, INT], BOOLEAN, lambda a, b: a == b, commutative=True),
        Operation(INT, "ne", [INT, INT], BOOLEAN, lambda a, b: a != b, commutative=True),
        Operation(INT, "to_long", [INT], LONG, lambda a: a),
        Operation(INT, "to_float", [INT], FLOAT, lambda a: jmath.f32(float(a))),
        Operation(INT, "to_double", [INT], DOUBLE, lambda a: float(a)),
        Operation(INT, "to_char", [INT], CHAR, jmath.i2c),
    ]


def _long_ops() -> list[Operation]:
    i = jmath.i64
    return [
        Operation(LONG, "add", [LONG, LONG], LONG, lambda a, b: i(a + b), commutative=True),
        Operation(LONG, "sub", [LONG, LONG], LONG, lambda a, b: i(a - b)),
        Operation(LONG, "mul", [LONG, LONG], LONG, lambda a, b: i(a * b), commutative=True),
        Operation(LONG, "div", [LONG, LONG], LONG, lambda a, b: jmath.idiv(a, b, 64), traps=True),
        Operation(LONG, "rem", [LONG, LONG], LONG, lambda a, b: jmath.irem(a, b, 64), traps=True),
        Operation(LONG, "neg", [LONG], LONG, lambda a: i(-a)),
        Operation(LONG, "shl", [LONG, INT], LONG, lambda a, b: jmath.ishl(a, b, 64)),
        Operation(LONG, "shr", [LONG, INT], LONG, lambda a, b: jmath.ishr(a, b, 64)),
        Operation(LONG, "ushr", [LONG, INT], LONG, lambda a, b: jmath.iushr(a, b, 64)),
        Operation(LONG, "and", [LONG, LONG], LONG, lambda a, b: a & b, commutative=True),
        Operation(LONG, "or", [LONG, LONG], LONG, lambda a, b: a | b, commutative=True),
        Operation(LONG, "xor", [LONG, LONG], LONG, lambda a, b: a ^ b, commutative=True),
        Operation(LONG, "compl", [LONG], LONG, lambda a: i(~a)),
        Operation(LONG, "lt", [LONG, LONG], BOOLEAN, lambda a, b: a < b),
        Operation(LONG, "le", [LONG, LONG], BOOLEAN, lambda a, b: a <= b),
        Operation(LONG, "gt", [LONG, LONG], BOOLEAN, lambda a, b: a > b),
        Operation(LONG, "ge", [LONG, LONG], BOOLEAN, lambda a, b: a >= b),
        Operation(LONG, "eq", [LONG, LONG], BOOLEAN, lambda a, b: a == b, commutative=True),
        Operation(LONG, "ne", [LONG, LONG], BOOLEAN, lambda a, b: a != b, commutative=True),
        Operation(LONG, "to_int", [LONG], INT, jmath.l2i),
        Operation(LONG, "to_float", [LONG], FLOAT, lambda a: jmath.f32(float(a))),
        Operation(LONG, "to_double", [LONG], DOUBLE, lambda a: float(a)),
    ]


def _float_ops() -> list[Operation]:
    f = jmath.f32
    return [
        Operation(FLOAT, "add", [FLOAT, FLOAT], FLOAT, lambda a, b: f(a + b), commutative=True),
        Operation(FLOAT, "sub", [FLOAT, FLOAT], FLOAT, lambda a, b: f(a - b)),
        Operation(FLOAT, "mul", [FLOAT, FLOAT], FLOAT, lambda a, b: f(a * b), commutative=True),
        Operation(FLOAT, "div", [FLOAT, FLOAT], FLOAT, lambda a, b: f(jmath.fdiv(a, b))),
        Operation(FLOAT, "rem", [FLOAT, FLOAT], FLOAT, lambda a, b: f(jmath.frem(a, b))),
        Operation(FLOAT, "neg", [FLOAT], FLOAT, lambda a: f(-a)),
        Operation(FLOAT, "lt", [FLOAT, FLOAT], BOOLEAN, lambda a, b: a < b),
        Operation(FLOAT, "le", [FLOAT, FLOAT], BOOLEAN, lambda a, b: a <= b),
        Operation(FLOAT, "gt", [FLOAT, FLOAT], BOOLEAN, lambda a, b: a > b),
        Operation(FLOAT, "ge", [FLOAT, FLOAT], BOOLEAN, lambda a, b: a >= b),
        Operation(FLOAT, "eq", [FLOAT, FLOAT], BOOLEAN, lambda a, b: a == b, commutative=True),
        Operation(FLOAT, "ne", [FLOAT, FLOAT], BOOLEAN, lambda a, b: a != b, commutative=True),
        Operation(FLOAT, "to_int", [FLOAT], INT, jmath.d2i),
        Operation(FLOAT, "to_long", [FLOAT], LONG, jmath.d2l),
        Operation(FLOAT, "to_double", [FLOAT], DOUBLE, lambda a: a),
    ]


def _double_ops() -> list[Operation]:
    return [
        Operation(DOUBLE, "add", [DOUBLE, DOUBLE], DOUBLE, lambda a, b: a + b, commutative=True),
        Operation(DOUBLE, "sub", [DOUBLE, DOUBLE], DOUBLE, lambda a, b: a - b),
        Operation(DOUBLE, "mul", [DOUBLE, DOUBLE], DOUBLE, lambda a, b: a * b, commutative=True),
        Operation(DOUBLE, "div", [DOUBLE, DOUBLE], DOUBLE, jmath.fdiv),
        Operation(DOUBLE, "rem", [DOUBLE, DOUBLE], DOUBLE, jmath.frem),
        Operation(DOUBLE, "neg", [DOUBLE], DOUBLE, lambda a: -a),
        Operation(DOUBLE, "lt", [DOUBLE, DOUBLE], BOOLEAN, lambda a, b: a < b),
        Operation(DOUBLE, "le", [DOUBLE, DOUBLE], BOOLEAN, lambda a, b: a <= b),
        Operation(DOUBLE, "gt", [DOUBLE, DOUBLE], BOOLEAN, lambda a, b: a > b),
        Operation(DOUBLE, "ge", [DOUBLE, DOUBLE], BOOLEAN, lambda a, b: a >= b),
        Operation(DOUBLE, "eq", [DOUBLE, DOUBLE], BOOLEAN, lambda a, b: a == b, commutative=True),
        Operation(DOUBLE, "ne", [DOUBLE, DOUBLE], BOOLEAN, lambda a, b: a != b, commutative=True),
        Operation(DOUBLE, "to_int", [DOUBLE], INT, jmath.d2i),
        Operation(DOUBLE, "to_long", [DOUBLE], LONG, jmath.d2l),
        Operation(DOUBLE, "to_float", [DOUBLE], FLOAT, jmath.f32),
    ]


def _boolean_ops() -> list[Operation]:
    return [
        Operation(BOOLEAN, "and", [BOOLEAN, BOOLEAN], BOOLEAN, lambda a, b: a and b, commutative=True),
        Operation(BOOLEAN, "or", [BOOLEAN, BOOLEAN], BOOLEAN, lambda a, b: a or b, commutative=True),
        Operation(BOOLEAN, "xor", [BOOLEAN, BOOLEAN], BOOLEAN, lambda a, b: a != b, commutative=True),
        Operation(BOOLEAN, "not", [BOOLEAN], BOOLEAN, lambda a: not a),
        Operation(BOOLEAN, "eq", [BOOLEAN, BOOLEAN], BOOLEAN, lambda a, b: a == b, commutative=True),
        Operation(BOOLEAN, "ne", [BOOLEAN, BOOLEAN], BOOLEAN, lambda a, b: a != b, commutative=True),
    ]


def _char_ops() -> list[Operation]:
    return [
        Operation(CHAR, "to_int", [CHAR], INT, lambda a: a),
        Operation(CHAR, "eq", [CHAR, CHAR], BOOLEAN, lambda a, b: a == b, commutative=True),
        Operation(CHAR, "ne", [CHAR, CHAR], BOOLEAN, lambda a, b: a != b, commutative=True),
    ]


def _build_tables() -> dict[PrimitiveType, list[Operation]]:
    tables = {
        INT: _int_ops(),
        LONG: _long_ops(),
        FLOAT: _float_ops(),
        DOUBLE: _double_ops(),
        BOOLEAN: _boolean_ops(),
        CHAR: _char_ops(),
    }
    for ops in tables.values():
        for index, op in enumerate(ops):
            op.index = index
    return tables


#: the implicit, tamper-proof operation tables, keyed by base type
OPS_BY_TYPE: dict[PrimitiveType, list[Operation]] = _build_tables()


def lookup_op(base: PrimitiveType, name: str) -> Operation:
    """Find an operation by base type and name (raises KeyError if absent)."""
    for op in OPS_BY_TYPE[base]:
        if op.name == name:
            return op
    raise KeyError(f"no operation {name!r} on type {base}")


def op_by_index(base: PrimitiveType, index: int) -> Optional[Operation]:
    """Find an operation by table index (None when out of range)."""
    ops = OPS_BY_TYPE.get(base)
    if ops is None or not 0 <= index < len(ops):
        return None
    return ops[index]
