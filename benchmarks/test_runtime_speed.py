"""Runtime-facing claims (Sections 1 and 8-10), measured with the JIT.

Two claims the paper makes about execution speed:

1. SafeTSA arrives ready for code generation -- the consumer can go
   straight from decoded SSA to target code (no stack simulation, no
   type inference, no dataflow verification).  `repro.interp.jit` is
   that code generator, and it beats the interpreter by a wide margin.
2. Producer-side check elimination "eventually leads to faster
   execution": the removed null/bounds checks are real work the
   consumer no longer performs.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.corpus import corpus_source
from repro.interp.interpreter import Interpreter
from repro.interp.jit import JitCompiler
from repro.pipeline import compile_to_module


def _time(callable_, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_jit_speedup_table():
    print()
    print(f"{'Program':16} {'interp':>9} {'jit':>9} {'speedup':>8}")
    total_interp = total_jit = 0.0
    for name in ("BitSieve", "Linpack", "BigInt", "MiniVM"):
        source = corpus_source(name)
        module = compile_to_module(source, optimize=True)
        interp_time = _time(lambda: Interpreter(
            module, max_steps=200_000_000).run_main(name), repeat=1)
        jit = JitCompiler(module)
        jit.run_main(name)  # warm (compile) once
        jit_time = _time(lambda: JitCompiler(module).run_main(name))
        total_interp += interp_time
        total_jit += jit_time
        print(f"{name:16} {interp_time * 1000:7.1f}ms "
              f"{jit_time * 1000:7.1f}ms {interp_time / jit_time:7.1f}x")
    print(f"{'TOTAL':16} {total_interp * 1000:7.1f}ms "
          f"{total_jit * 1000:7.1f}ms "
          f"{total_interp / total_jit:7.1f}x")
    assert total_jit < total_interp


def test_check_elimination_speeds_execution():
    """Optimized modules execute fewer dynamic checks; under the JIT the
    removed checks are genuinely absent from the generated code."""
    source = corpus_source("Linpack")
    plain = compile_to_module(source)
    optimized = compile_to_module(source, optimize=True)
    # dynamic check counts from the (instrumented) interpreter
    interp_plain = Interpreter(plain, max_steps=200_000_000)
    interp_plain.run_main("Linpack")
    interp_opt = Interpreter(optimized, max_steps=200_000_000)
    interp_opt.run_main("Linpack")
    plain_checks = sum(interp_plain.check_counts.values())
    opt_checks = sum(interp_opt.check_counts.values())
    print(f"\ndynamic checks: plain {plain_checks}, "
          f"optimized {opt_checks} "
          f"({1 - opt_checks / plain_checks:.0%} fewer)")
    assert opt_checks < plain_checks
    # wall clock under the JIT (best of 5 to damp noise)
    plain_time = _time(lambda: JitCompiler(plain).run_main("Linpack"),
                       repeat=5)
    opt_time = _time(lambda: JitCompiler(optimized).run_main("Linpack"),
                     repeat=5)
    print(f"jit wall clock: plain {plain_time * 1000:.1f}ms, "
          f"optimized {opt_time * 1000:.1f}ms")
    # the optimized module must not be slower by more than noise
    assert opt_time < plain_time * 1.15


def test_jit_compile_benchmark(benchmark):
    module = compile_to_module(corpus_source("BigInt"), optimize=True)

    def compile_all():
        jit = JitCompiler(module)
        return [jit.get(f) for f in module.functions.values()]

    compiled = benchmark(compile_all)
    assert all(callable(f) for f in compiled)


def test_jit_execute_benchmark(benchmark):
    module = compile_to_module(corpus_source("BitSieve"), optimize=True)

    def run():
        return JitCompiler(module).run_main("BitSieve")

    result = benchmark(run)
    assert result.stdout.startswith("primes=")
