"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.pipeline import compile_to_module
from repro.interp.interpreter import Interpreter


def run_java(source: str, *, optimize: bool = False, class_name=None,
             method: str = "main", max_steps: int = 5_000_000):
    """Compile and execute a MiniJava++ program; returns ExecutionResult."""
    module = compile_to_module(source, optimize=optimize)
    interp = Interpreter(module, max_steps=max_steps)
    return interp.run_main(class_name, method)


def stdout_of(source: str, **kwargs) -> str:
    result = run_java(source, **kwargs)
    assert result.exception is None, \
        f"unexpected {result.exception_name()}; stdout so far:\n{result.stdout}"
    return result.stdout


def main_wrap(body: str, extra: str = "") -> str:
    """Wrap statements into a minimal runnable class."""
    return f"class Main {{ {extra}\n static void main() {{\n{body}\n}} }}"


@pytest.fixture
def compile_module():
    return compile_to_module
