"""High-level public API: the producer / consumer pipeline in five calls.

The functions here wire the subsystems together::

    source --frontend--> typed AST --uast--> UAST --ssa--> SSA + CST
           --tsa.layout--> SafeTSA module --opt--> optimised module
           --encode--> wire bytes --decode--> module --interp--> result
"""

from __future__ import annotations

from typing import Optional


def compile_source(source: str, *, optimize: bool = False,
                   passes=None, prune_phis: bool = True,
                   filename: str = "<source>"):
    """Compile MiniJava++ source text to a SafeTSA :class:`~repro.tsa.module.Module`.

    ``optimize`` runs the paper's producer-side pipeline (constant
    propagation, CSE with memory dependence, check elimination, DCE)
    before layout; ``passes`` selects an explicit pipeline spec instead
    (see :func:`repro.driver.passes.parse_pass_spec`).  ``prune_phis``
    applies Briggs-style dead-phi pruning during SSA construction
    (Section 7 reports ~31% fewer phis).
    """
    from repro.pipeline import compile_to_module
    return compile_to_module(source, optimize=optimize, passes=passes,
                             prune_phis=prune_phis, filename=filename)


def compile_to_bytecode(source: str, *, filename: str = "<source>"):
    """Compile MiniJava++ source to the Java-bytecode baseline
    (:class:`~repro.jvm.classfile.ClassFileSet`)."""
    from repro.pipeline import compile_to_classfiles
    return compile_to_classfiles(source, filename=filename)


def encode_module(module, *, format_version: str = "stsa1",
                  store=None) -> bytes:
    """Externalize a SafeTSA module into its wire format.

    ``format_version="stsa2"`` wraps the stream in a self-contained v2
    distribution envelope (see :mod:`repro.encode.format`); the default
    is the bit-identical v1 stream.
    """
    from repro.encode.serializer import encode_module as _encode
    return _encode(module, format_version=format_version, store=store)


def decode_module(data: bytes, *, store=None):
    """Decode wire bytes into a verified SafeTSA module.

    Raises :class:`repro.encode.deserializer.DecodeError` on any stream in
    which a well-formed module is unrepresentable.  v2 envelopes are
    resolved against ``store`` (a :class:`repro.cache.DictionaryStore`;
    ``None`` for the environment default) before verification.
    """
    from repro.encode.deserializer import decode_module as _decode
    return _decode(data, store=store)


def load_module(data: bytes, *, lazy: bool = False,
                jobs: Optional[int] = None, store=None):
    """Load wire bytes through the fused verifying loader.

    One pass decodes *and* verifies; repeat loads of the same bytes hit
    the verified-module cache and skip the residual rule sweeps.
    ``lazy=True`` defers each function body to first touch; ``jobs``
    fans warm-load body decoding across N threads (0 = one per CPU).
    ``store`` resolves v2 envelopes, as in :func:`decode_module`.
    Rejects exactly the streams :func:`decode_module` +
    ``verify_module`` reject (see ``docs/LOADER.md``).
    """
    from repro.loader import load_module as _load
    return _load(data, lazy=lazy, jobs=jobs, store=store)


def stream_module(chunks, *, store=None):
    """Feed wire bytes chunk by chunk through the streaming loader and
    return the fully verified module (see :mod:`repro.loader.stream`
    for the incremental ``StreamingLoader`` API)."""
    from repro.loader import stream_module as _stream
    return _stream(chunks, store=store)


def run_module(module, main_class: Optional[str] = None,
               method: str = "main"):
    """Execute a module's entry point; returns an ExecutionResult."""
    from repro.interp.interpreter import Interpreter
    return Interpreter(module).run_main(main_class, method)
