"""Programmatic SafeTSA construction: a front-end-independent builder.

The paper motivates the UAST with "future extensibility of the system to
handle input languages other than Java" (Section 7).  This module is that
extension point: it lets any producer build SafeTSA modules directly --
no Java source involved -- while inheriting all of the toolchain's
guarantees (SSA construction, check insertion, verification, encoding).

Example::

    from repro.tsa.builder import ModuleBuilder
    from repro.typesys.types import INT

    mb = ModuleBuilder()
    worker = mb.new_class("Worker")
    triangle = worker.method("triangle", [("n", INT)], INT)
    with triangle as b:
        total = b.local(INT, "total", b.const(0))
        i = b.local(INT, "i", b.const(0))
        with b.while_(b.le(b.get(i), b.arg("n"))):
            b.set(total, b.add(b.get(total), b.get(i)))
            b.set(i, b.add(b.get(i), b.const(1)))
        b.ret(b.get(total))
    module = mb.build(optimize=True)

The body DSL produces UAST nodes, so every lowering and safety rule of
the main pipeline applies unchanged.
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from repro.frontend.ast import LocalVar
from repro.pipeline import _intern_used_types
from repro.ssa.construction import build_function
from repro.ssa.ir import Module
from repro.typesys.ops import lookup_op
from repro.typesys.table import TypeTable
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PrimitiveType,
    Type,
    VOID,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World
from repro.uast import nodes as u


class BuildError(Exception):
    """Invalid builder usage."""


class Var:
    """Handle to a local variable of the method being built."""

    __slots__ = ("local",)

    def __init__(self, local: LocalVar):
        self.local = local


class ModuleBuilder:
    """Declares classes and assembles a verified SafeTSA module."""

    def __init__(self) -> None:
        self.world = World()
        self._classes: list["ClassBuilder"] = []

    def new_class(self, name: str,
                  superclass: str = "java.lang.Object") -> "ClassBuilder":
        info = ClassInfo(name, superclass)
        self.world.define_class(info)
        builder = ClassBuilder(self, info)
        self._classes.append(builder)
        return builder

    def build(self, optimize: bool = False, verify: bool = True) -> Module:
        """Finalize: link the world, build SSA, optionally optimise."""
        self.world.link()
        table = TypeTable(self.world)
        module = Module(self.world, table)
        for class_builder in self._classes:
            module.classes.append(class_builder.info)
            table.declare_class(class_builder.info)
            for umethod in class_builder._finalize():
                module.add_function(build_function(
                    self.world, class_builder.info, umethod))
        _intern_used_types(module)
        if optimize:
            from repro.opt.pipeline import optimize_module
            optimize_module(module)
        if verify:
            from repro.tsa.verifier import verify_module
            verify_module(module)
        return module


class ClassBuilder:
    def __init__(self, parent: ModuleBuilder, info: ClassInfo):
        self.module_builder = parent
        self.info = info
        self._methods: list["MethodBuilder"] = []
        # a default constructor exists from the start, so other method
        # bodies can say new("X") before _finalize(); defining an explicit
        # no-arg constructor replaces it
        self._default_ctor = MethodBuilder(
            self, info.add_method(MethodInfo("<init>", [], VOID)), [])
        with self._default_ctor:
            pass
        self._methods.append(self._default_ctor)

    def field(self, name: str, type: Type,
              static: bool = False) -> FieldInfo:
        return self.info.add_field(FieldInfo(name, type, is_static=static))

    def method(self, name: str, params=None, returns: Type = VOID,
               static: bool = True) -> "MethodBuilder":
        params = params or []
        if name == "<init>" and not params \
                and self._default_ctor is not None:
            # replace the synthesized default constructor
            self.info.methods.remove(self._default_ctor.info)
            self._methods.remove(self._default_ctor)
            self._default_ctor = None
        info = MethodInfo(name, [t for _, t in params], returns,
                          is_static=static)
        self.info.add_method(info)
        builder = MethodBuilder(self, info, params)
        self._methods.append(builder)
        return builder

    def constructor(self, params=None) -> "MethodBuilder":
        return self.method("<init>", params, VOID, static=False)

    def _finalize(self) -> list[u.UMethod]:
        return [m._to_umethod() for m in self._methods]


class MethodBuilder:
    """Fluent statement/expression DSL for one method body."""

    def __init__(self, class_builder: ClassBuilder, info: MethodInfo,
                 params):
        self.class_builder = class_builder
        self.world = class_builder.module_builder.world
        self.info = info
        self._locals: list[LocalVar] = []
        self._args: dict[str, LocalVar] = {}
        self._this: Optional[LocalVar] = None
        self._stmts: list[list[u.UStmt]] = [[]]
        self._targets = itertools.count(1)
        self._loop_stack: list[tuple[int, int]] = []
        self._finalized = False
        index = 0
        if not info.is_static:
            self._this = LocalVar("this", class_builder.info.type, index,
                                  is_param=True, is_this=True)
            self._locals.append(self._this)
            index += 1
        for name, type in params:
            local = LocalVar(name, type, index, is_param=True)
            self._locals.append(local)
            self._args[name] = local
            index += 1

    # -- body lifecycle ---------------------------------------------------

    def __enter__(self) -> "MethodBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._finalized = True

    def _to_umethod(self) -> u.UMethod:
        if not self._finalized:
            raise BuildError(
                f"method {self.info.name} body was never completed")
        body = list(self._stmts[0])
        if self.info.is_constructor:
            parent = self.class_builder.info.superclass
            super_ctor = next(
                (m for m in parent.methods
                 if m.is_constructor and not m.param_types), None)
            if super_ctor is None:
                raise BuildError(
                    f"superclass {parent.name} lacks a no-arg constructor")
            body.insert(0, u.SEval(u.ECall(
                super_ctor, u.ELocal(self._this), [],
                dispatch=False, base=parent)))
        return u.UMethod(self.info, list(self._locals), u.SBlock(body))

    def _emit(self, stmt: u.UStmt) -> None:
        self._stmts[-1].append(stmt)

    # -- values -------------------------------------------------------------

    def const(self, value, type: Optional[Type] = None) -> u.UExpr:
        if type is None:
            if isinstance(value, bool):
                type = BOOLEAN
            elif isinstance(value, int):
                type = INT
            elif isinstance(value, float):
                type = DOUBLE
            elif isinstance(value, str):
                type = ClassType("java.lang.String")
            elif value is None:
                raise BuildError("null constants need an explicit type")
            else:
                raise BuildError(f"cannot infer a type for {value!r}")
        return u.EConst(type, value)

    def null(self, type: Type) -> u.UExpr:
        return u.EConst(type, None)

    def arg(self, name: str) -> u.UExpr:
        local = self._args.get(name)
        if local is None:
            raise BuildError(f"no parameter named {name!r}")
        return u.ELocal(local)

    def this(self) -> u.UExpr:
        if self._this is None:
            raise BuildError("'this' in a static method")
        return u.ELocal(self._this)

    def local(self, type: Type, name: str,
              init: Optional[u.UExpr] = None) -> Var:
        local = LocalVar(name, type, len(self._locals))
        self._locals.append(local)
        var = Var(local)
        if init is not None:
            self.set(var, init)
        return var

    def get(self, var: Var) -> u.UExpr:
        return u.ELocal(var.local)

    def set(self, var: Var, value: u.UExpr) -> None:
        self._emit(u.SLocalWrite(var.local, value))

    # -- arithmetic (operation name dispatch) --------------------------------

    def op(self, name: str, *args: u.UExpr) -> u.UExpr:
        """Apply a type-table operation, e.g. ``op("int.add", a, b)``."""
        base_name, op_name = name.split(".")
        operation = lookup_op(PrimitiveType(base_name), op_name)
        return u.EPrim(operation, list(args))

    def _binary(self, name: str, left: u.UExpr, right: u.UExpr) -> u.UExpr:
        base = left.type
        if not isinstance(base, PrimitiveType):
            raise BuildError(f"{name} needs a primitive operand")
        return u.EPrim(lookup_op(base, name), [left, right])

    def add(self, a, b):
        return self._binary("add", a, b)

    def sub(self, a, b):
        return self._binary("sub", a, b)

    def mul(self, a, b):
        return self._binary("mul", a, b)

    def div(self, a, b):
        return self._binary("div", a, b)

    def lt(self, a, b):
        return self._binary("lt", a, b)

    def le(self, a, b):
        return self._binary("le", a, b)

    def gt(self, a, b):
        return self._binary("gt", a, b)

    def ge(self, a, b):
        return self._binary("ge", a, b)

    def eq(self, a, b):
        return self._binary("eq", a, b)

    def ne(self, a, b):
        return self._binary("ne", a, b)

    def not_(self, a):
        return u.EPrim(lookup_op(BOOLEAN, "not"), [a])

    # -- objects and arrays ----------------------------------------------------

    def _field_of(self, owner: ClassInfo, name: str) -> FieldInfo:
        field = owner.find_field(name)
        if field is None:
            raise BuildError(f"no field {name!r} in {owner.name}")
        return field

    def get_field(self, obj: u.UExpr, name: str) -> u.UExpr:
        owner = self.world.class_of(obj.type)
        return u.EGetField(obj, self._field_of(owner, name))

    def set_field(self, obj: u.UExpr, name: str, value: u.UExpr) -> None:
        owner = self.world.class_of(obj.type)
        self._emit(u.SFieldWrite(obj, self._field_of(owner, name), value))

    def get_static(self, class_name: str, name: str) -> u.UExpr:
        owner = self.world.require(class_name)
        return u.EGetStatic(self._field_of(owner, name))

    def set_static(self, class_name: str, name: str,
                   value: u.UExpr) -> None:
        owner = self.world.require(class_name)
        self._emit(u.SStaticWrite(self._field_of(owner, name), value))

    def new(self, class_name: str, *args: u.UExpr) -> u.UExpr:
        info = self.world.require(class_name)
        ctor = self._resolve(info, "<init>", args)
        return u.ENew(info, ctor, list(args))

    def new_array(self, element: Type, length: u.UExpr) -> u.UExpr:
        return u.ENewArray(ArrayType(element), length)

    def array_get(self, array: u.UExpr, index: u.UExpr) -> u.UExpr:
        if not isinstance(array.type, ArrayType):
            raise BuildError("array_get of a non-array")
        return u.EArrayGet(array.type.element, array, index)

    def array_set(self, array: u.UExpr, index: u.UExpr,
                  value: u.UExpr) -> None:
        self._emit(u.SArrayWrite(array, index, value))

    def array_length(self, array: u.UExpr) -> u.UExpr:
        return u.EArrayLen(INT, array)

    def _resolve(self, info: ClassInfo, name: str, args) -> MethodInfo:
        for method in info.methods_named(name):
            if len(method.param_types) != len(args):
                continue
            if all(self.world.assignable(arg.type, param)
                   for arg, param in zip(args, method.param_types)):
                return method
        raise BuildError(f"no method {name}/{len(args)} on {info.name}")

    def call(self, receiver: u.UExpr, name: str,
             *args: u.UExpr) -> u.UExpr:
        info = self.world.class_of(receiver.type)
        method = self._resolve(info, name, args)
        return u.ECall(method, receiver, list(args), dispatch=True,
                       base=info)

    def call_static(self, class_name: str, name: str,
                    *args: u.UExpr) -> u.UExpr:
        info = self.world.require(class_name)
        method = self._resolve(info, name, args)
        if not method.is_static:
            raise BuildError(f"{info.name}.{name} is not static")
        return u.ECall(method, None, list(args), dispatch=False, base=info)

    def eval(self, expr: u.UExpr) -> None:
        """Evaluate an expression for its side effects."""
        self._emit(u.SEval(expr))

    # -- control flow -------------------------------------------------------

    def ret(self, value: Optional[u.UExpr] = None) -> None:
        self._emit(u.SReturn(value))

    def throw(self, value: u.UExpr) -> None:
        self._emit(u.SThrow(value))

    class _IfContext:
        def __init__(self, builder: "MethodBuilder", cond: u.UExpr):
            self.builder = builder
            self.cond = cond
            self.then_body: Optional[list[u.UStmt]] = None

        def __enter__(self):
            self.builder._stmts.append([])
            return self

        def __exit__(self, exc_type, exc, tb):
            if exc_type is not None:
                return
            body = self.builder._stmts.pop()
            if self.then_body is None:
                # plain if; else_() may reopen it
                self.then_body = body
                self.builder._emit(u.SIf(self.cond, u.SBlock(body), None))

        def else_(self) -> "MethodBuilder._ElseContext":
            return MethodBuilder._ElseContext(self)

    class _ElseContext:
        def __init__(self, if_context: "MethodBuilder._IfContext"):
            self.if_context = if_context

        def __enter__(self):
            self.builder = self.if_context.builder
            self.builder._stmts.append([])
            return self

        def __exit__(self, exc_type, exc, tb):
            if exc_type is not None:
                return
            else_body = self.builder._stmts.pop()
            emitted = self.builder._stmts[-1]
            # replace the plain SIf the if-context just emitted
            last = emitted[-1]
            if not isinstance(last, u.SIf):
                raise BuildError("else_() must follow an if_() block")
            emitted[-1] = u.SIf(last.cond, last.then_body,
                                u.SBlock(else_body))

    def if_(self, cond: u.UExpr) -> "_IfContext":
        return MethodBuilder._IfContext(self, cond)

    class _WhileContext:
        def __init__(self, builder: "MethodBuilder", cond: u.UExpr):
            self.builder = builder
            self.cond = cond
            self.break_id = next(builder._targets)
            self.continue_id = next(builder._targets)

        def __enter__(self):
            self.builder._stmts.append([])
            self.builder._loop_stack.append((self.break_id,
                                             self.continue_id))
            return self

        def __exit__(self, exc_type, exc, tb):
            self.builder._loop_stack.pop()
            if exc_type is not None:
                return
            body = self.builder._stmts.pop()
            self.builder._emit(u.SWhile(self.break_id, self.continue_id,
                                        self.cond, u.SBlock(body)))

    def while_(self, cond: u.UExpr) -> "_WhileContext":
        return MethodBuilder._WhileContext(self, cond)

    def break_(self) -> None:
        if not self._loop_stack:
            raise BuildError("break_ outside a loop")
        self._emit(u.SBreak(self._loop_stack[-1][0]))

    def continue_(self) -> None:
        if not self._loop_stack:
            raise BuildError("continue_ outside a loop")
        self._emit(u.SContinue(self._loop_stack[-1][1]))
