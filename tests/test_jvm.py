"""Bytecode baseline tests: codegen, class files, interpreter, verifier."""

import pytest

from repro.frontend.parser import parse_compilation_unit
from repro.frontend.semantics import analyze
from repro.interp.interpreter import Interpreter
from repro.jvm.classfile import class_file_bytes
from repro.jvm.codegen import compile_unit
from repro.jvm.interp import BytecodeInterpreter
from repro.jvm.opcodes import Insn, insn_size
from repro.jvm.verifier import BytecodeVerifyError, verify_class, \
    verify_method
from repro.pipeline import compile_to_module
from repro.uast.builder import UastBuilder


def compile_bc(source: str):
    unit = parse_compilation_unit(source)
    world = analyze(unit)
    builder = UastBuilder(world)
    classes = compile_unit(world, {decl.info: builder.build_class(decl)
                                   for decl in unit.classes})
    return world, classes


def run_bc(source: str, main_class=None):
    world, classes = compile_bc(source)
    return BytecodeInterpreter(classes, world,
                               max_steps=50_000_000).run_main(main_class)


def method_named(classes, name):
    for cls in classes:
        for method in cls.methods:
            if method.method.name == name:
                return method
    raise KeyError(name)


class TestInsnSizes:
    def test_iconst_forms(self):
        assert insn_size(Insn("iconst", 3)) == 1
        assert insn_size(Insn("iconst", -1)) == 1
        assert insn_size(Insn("iconst", 100)) == 2   # bipush
        assert insn_size(Insn("iconst", 1000)) == 3  # sipush
        assert insn_size(Insn("iconst", 100000)) == 2  # ldc

    def test_load_forms(self):
        assert insn_size(Insn("iload", 0)) == 1
        assert insn_size(Insn("iload", 3)) == 1
        assert insn_size(Insn("iload", 4)) == 2
        assert insn_size(Insn("aload", 300)) == 4  # wide

    def test_member_refs_are_three_bytes(self):
        assert insn_size(Insn("getfield", None)) == 3
        assert insn_size(Insn("invokevirtual", None)) == 3

    def test_branches_are_three_bytes(self):
        assert insn_size(Insn("goto", 0)) == 3
        assert insn_size(Insn("if_icmplt", 0)) == 3


class TestCodegen:
    def test_comparison_fuses_into_branch(self):
        _, classes = compile_bc(
            "class T { static int f(int a, int b) {"
            "if (a < b) return 1; return 0; } }")
        ops = [i.op for i in method_named(classes, "f").insns]
        assert "if_icmpge" in ops  # negated fused comparison
        # no boolean materialisation for a bare if
        assert ops.count("iconst") <= 2

    def test_comparison_against_zero_uses_short_form(self):
        _, classes = compile_bc(
            "class T { static int f(int a) {"
            "if (a > 0) return 1; return 0; } }")
        ops = [i.op for i in method_named(classes, "f").insns]
        assert "ifle" in ops

    def test_null_comparison_uses_ifnull(self):
        _, classes = compile_bc(
            "class T { static int f(String s) {"
            "if (s == null) return 1; return 0; } }")
        ops = [i.op for i in method_named(classes, "f").insns]
        assert "ifnonnull" in ops or "ifnull" in ops

    def test_long_slots_are_double_width(self):
        _, classes = compile_bc(
            "class T { static long f(long a, long b) { return a + b; } }")
        compiled = method_named(classes, "f")
        assert compiled.max_locals >= 4

    def test_multianewarray_emitted(self):
        _, classes = compile_bc(
            "class T { static int f() {"
            "int[][] g = new int[2][3]; return g[1][2]; } }")
        ops = [i.op for i in method_named(classes, "f").insns]
        assert "multianewarray" in ops

    def test_exception_table_in_clause_order(self):
        _, classes = compile_bc(
            "class E1 extends RuntimeException { }"
            "class T { static int f() {"
            "try { return 1; } catch (E1 a) { return 2; }"
            "catch (RuntimeException b) { return 3; } } }")
        compiled = method_named(classes, "f")
        assert len(compiled.exception_table) == 2
        first, second = compiled.exception_table
        assert first[3].name == "E1"
        assert second[3].name == "java.lang.RuntimeException"

    def test_string_constants_use_ldc(self):
        _, classes = compile_bc(
            'class T { static String f() { return "hi"; } }')
        ops = [i.op for i in method_named(classes, "f").insns]
        assert "ldc_string" in ops


class TestClassFile:
    def test_real_class_file_header(self):
        _, classes = compile_bc("class T { int x; void f() { } }")
        data = class_file_bytes(classes[0])
        assert data[:4] == b"\xCA\xFE\xBA\xBE"

    def test_constant_pool_deduplicates(self):
        _, classes = compile_bc(
            'class T { static String f() { return "a"; }'
            'static String g() { return "a"; } }')
        data = class_file_bytes(classes[0])
        assert data.count(b"\x01\x00\x01a") == 1  # utf8 "a" appears once

    def test_size_grows_with_code(self):
        _, small = compile_bc("class T { void f() { } }")
        _, large = compile_bc(
            "class T { void f() { int s = 0;"
            + "s = s + 1;" * 50 + "} }")
        assert len(class_file_bytes(large[0])) > \
            len(class_file_bytes(small[0]))

    def test_exception_table_in_bytes(self):
        _, classes = compile_bc(
            "class T { static int f() {"
            "try { return 1; } catch (RuntimeException e) { return 2; } } }")
        data = class_file_bytes(classes[0])
        assert len(data) > 100


class TestBytecodeInterpreter:
    def test_arithmetic_matches_safetsa(self):
        source = ("class T { static void main() {"
                  "System.out.println(-2147483648 / -1);"
                  "System.out.println(7L * 3L);"
                  "System.out.println(1.5 % 0.7);"
                  "} }")
        bc = run_bc(source)
        ts = Interpreter(compile_to_module(source)).run_main()
        assert bc.stdout == ts.stdout

    def test_exception_dispatch(self):
        source = ("class T { static void main() {"
                  "try { int[] a = new int[2]; a[5] = 1; }"
                  "catch (ArrayIndexOutOfBoundsException e)"
                  "{ System.out.println(\"caught \" + e.getMessage()); }"
                  "} }")
        bc = run_bc(source)
        assert bc.stdout.startswith("caught Index 5")

    def test_virtual_dispatch(self):
        source = ("class A { int f() { return 1; } }"
                  "class B extends A { int f() { return 2; } }"
                  "class T { static void main() {"
                  "A[] xs = new A[2]; xs[0] = new A(); xs[1] = new B();"
                  "System.out.println(xs[0].f() + xs[1].f()); } }")
        assert run_bc(source, "T").stdout == "3\n"

    def test_npe_on_null_receiver(self):
        source = ("class A { int f() { return 1; } }"
                  "class T { static void main() {"
                  "A a = null; a.f(); } }")
        result = run_bc(source, "T")
        assert result.exception_name() == "java.lang.NullPointerException"

    def test_boolean_display(self):
        source = ("class T { static void main() {"
                  "int a = 3; boolean b = a > 2;"
                  "System.out.println(b); System.out.println(!b); } }")
        assert run_bc(source).stdout == "true\nfalse\n"

    def test_finally_semantics(self):
        source = ("class T { static int f() {"
                  "try { return 1; } finally { System.out.println(\"fin\"); }"
                  "} static void main() { System.out.println(f()); } }")
        assert run_bc(source).stdout == "fin\n1\n"


class TestBytecodeVerifier:
    def test_corpus_verifies(self):
        from repro.bench.corpus import corpus_source
        world, classes = compile_bc(corpus_source("Parser"))
        for cls in classes:
            assert verify_class(world, cls) > 0

    def test_stack_underflow_rejected(self):
        world, classes = compile_bc(
            "class T { static int f(int a) { return a; } }")
        compiled = method_named(classes, "f")
        compiled.insns.insert(0, Insn("pop"))
        with pytest.raises(BytecodeVerifyError, match="underflow"):
            verify_method(world, compiled)

    def test_type_confusion_rejected(self):
        world, classes = compile_bc(
            "class T { static int f(int a) { return a; } }")
        compiled = method_named(classes, "f")
        # iload of slot 0 then areturn-style misuse: make it fload
        compiled.insns[0] = Insn("fload", 0)
        with pytest.raises(BytecodeVerifyError):
            verify_method(world, compiled)

    def test_falling_off_end_rejected(self):
        world, classes = compile_bc(
            "class T { static void f() { } }")
        compiled = method_named(classes, "f")
        compiled.insns = compiled.insns[:-1]  # drop the return
        with pytest.raises(BytecodeVerifyError):
            verify_method(world, compiled)

    def test_join_depth_mismatch_rejected(self):
        world, classes = compile_bc(
            "class T { static int f(boolean b) {"
            "if (b) return 1; return 0; } }")
        compiled = method_named(classes, "f")
        # push an extra value on one path only
        index = next(i for i, insn in enumerate(compiled.insns)
                     if insn.op.startswith("if"))
        compiled.insns.insert(index + 1, Insn("iconst", 7))
        with pytest.raises(BytecodeVerifyError):
            verify_method(world, compiled)


class TestDifferentialHarness:
    SOURCES = [
        "class T { static void main() { int s = 0;"
        "for (int i = 1; i <= 10; i++) s += i * i;"
        "System.out.println(s); } }",

        "class T { static void main() {"
        "String out = \"\"; char c = 'a';"
        "while (c <= 'e') { out = out + c; c = (char)(c + 1); }"
        "System.out.println(out); } }",

        "class T { static void main() {"
        "double acc = 1.0; for (int i = 0; i < 8; i++) acc = acc * 1.5;"
        "System.out.println(acc); } }",

        "class T { static void main() {"
        "long h = 1125899906842597L;"
        "for (int i = 0; i < 5; i++) h = h * 31L + i;"
        "System.out.println(h); } }",
    ]

    @pytest.mark.parametrize("index", range(len(SOURCES)))
    def test_bytecode_vs_safetsa(self, index):
        source = self.SOURCES[index]
        bc = run_bc(source)
        ts = Interpreter(compile_to_module(source)).run_main()
        assert bc.stdout == ts.stdout
        assert bc.exception_name() == ts.exception_name()


class TestVerifierDataflow:
    def test_handler_entry_state_is_one_exception(self):
        world, classes = compile_bc(
            "class T { static int f() {"
            "try { return g(); } catch (RuntimeException e) "
            "{ return e.hashCode(); } }"
            "static int g() { return 1; } }")
        compiled = method_named(classes, "f")
        steps = verify_method(world, compiled)
        assert steps > 0
        # the handler entry (astore of the caught exception) was reached
        handler_pcs = {entry[2] for entry in compiled.exception_table}
        assert handler_pcs, "try must produce an exception-table entry"

    def test_loop_requires_fixpoint_iteration(self):
        world, classes = compile_bc(
            "class T { static int f(int n) {"
            "int s = 0;"
            "for (int i = 0; i < n; i++) s += i;"
            "return s; } }")
        compiled = method_named(classes, "f")
        steps = verify_method(world, compiled)
        # join blocks are revisited at least once
        assert steps > len(compiled.insns)

    def test_reference_merge_finds_common_supertype(self):
        world, classes = compile_bc(
            "class A { } class B extends A { } class C extends A { }"
            "class T { static A f(boolean c) {"
            "A r; if (c) r = new B(); else r = new C(); return r; } }")
        compiled = method_named(classes, "f")
        verify_method(world, compiled)  # must not reject the merge

    def test_int_vs_ref_merge_rejected_on_use(self):
        world, classes = compile_bc(
            "class T { static int f(boolean c) {"
            "int r; if (c) r = 1; else r = 2; return r; } }")
        compiled = method_named(classes, "f")
        # corrupt one arm to store a reference into the int slot
        index = next(i for i, insn in enumerate(compiled.insns)
                     if insn.op == "istore")
        compiled.insns[index] = Insn("astore", compiled.insns[index].args[0])
        compiled.insns[index - 1] = Insn("aconst_null")
        with pytest.raises(BytecodeVerifyError):
            verify_method(world, compiled)

    def test_branch_target_past_end_rejected(self):
        world, classes = compile_bc(
            "class T { static void f() { } }")
        compiled = method_named(classes, "f")
        compiled.insns.insert(0, Insn("goto", 999))
        with pytest.raises(BytecodeVerifyError):
            verify_method(world, compiled)
