"""Wire format tests: bit I/O primitives and module round-trips."""

import pytest

from repro.bench.corpus import CORPUS_PROGRAMS, corpus_source
from repro.encode.bitio import BitIOError, BitReader, BitWriter
from repro.encode.deserializer import DecodeError, decode_module
from repro.encode.serializer import encode_module
from repro.interp.interpreter import Interpreter
from repro.pipeline import compile_to_module
from repro.tsa.verifier import verify_module


class TestBitIO:
    def test_bits_round_trip(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bits(0xFFFF, 16)
        writer.write_bits(0, 1)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b101
        assert reader.read_bits(16) == 0xFFFF
        assert reader.read_bits(1) == 0

    def test_value_too_wide_rejected(self):
        with pytest.raises(BitIOError):
            BitWriter().write_bits(4, 2)

    def test_bounded_round_trip_all_alphabets(self):
        for alphabet in (1, 2, 3, 5, 8, 9, 100, 257):
            writer = BitWriter()
            values = list(range(alphabet))
            for value in values:
                writer.write_bounded(value, alphabet)
            reader = BitReader(writer.getvalue())
            assert [reader.read_bounded(alphabet) for _ in values] == values

    def test_bounded_single_symbol_costs_nothing(self):
        writer = BitWriter()
        for _ in range(1000):
            writer.write_bounded(0, 1)
        assert writer.bit_length() == 0

    def test_bounded_phase_in_is_shorter_for_small_symbols(self):
        # alphabet 5: symbols 0..2 use 2 bits, 3..4 use 3 bits
        w0 = BitWriter(); w0.write_bounded(0, 5)
        w4 = BitWriter(); w4.write_bounded(4, 5)
        assert w0.bit_length() == 2
        assert w4.bit_length() == 3

    def test_bounded_out_of_alphabet_rejected(self):
        with pytest.raises(BitIOError):
            BitWriter().write_bounded(5, 5)

    def test_empty_alphabet_unencodable_and_undecodable(self):
        with pytest.raises(BitIOError):
            BitWriter().write_bounded(0, 0)
        with pytest.raises(BitIOError):
            BitReader(b"\xff").read_bounded(0)

    def test_gamma_round_trip(self):
        writer = BitWriter()
        values = [0, 1, 2, 3, 7, 8, 100, 12345]
        for value in values:
            writer.write_gamma(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_gamma() for _ in values] == values

    def test_signed_gamma_round_trip(self):
        writer = BitWriter()
        values = [0, -1, 1, -2**31, 2**31 - 1, 2**62, -(2**62)]
        for value in values:
            writer.write_signed_gamma(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_signed_gamma() for _ in values] == values

    def test_reading_past_end_rejected(self):
        reader = BitReader(b"\x80")
        reader.read_bits(8)
        with pytest.raises(BitIOError):
            reader.read_bits(1)

    def test_negative_gamma_rejected(self):
        with pytest.raises(BitIOError):
            BitWriter().write_gamma(-1)


class TestModuleRoundTrip:
    @pytest.mark.parametrize("program", CORPUS_PROGRAMS)
    def test_round_trip_preserves_everything(self, program):
        source = corpus_source(program)
        module = compile_to_module(source, optimize=True)
        wire = encode_module(module)
        decoded = decode_module(wire)
        verify_module(decoded)
        # structure: same opcode histogram
        def histogram(m):
            out = {}
            for f in m.functions.values():
                for b in f.blocks:
                    for i in b.all_instrs():
                        out[i.opcode] = out.get(i.opcode, 0) + 1
            return out
        assert histogram(decoded) == histogram(module)
        # determinism: re-encoding the decoded module is byte-identical
        assert encode_module(decoded) == wire

    @pytest.mark.parametrize("program", ("Parser", "BitSieve", "BinaryCode"))
    def test_round_trip_preserves_behaviour(self, program):
        source = corpus_source(program)
        module = compile_to_module(source, optimize=True)
        expected = Interpreter(module, max_steps=50_000_000) \
            .run_main(program)
        decoded = decode_module(encode_module(module))
        actual = Interpreter(decoded, max_steps=50_000_000) \
            .run_main(program)
        assert actual.stdout == expected.stdout
        assert actual.exception_name() == expected.exception_name()

    def test_unpruned_module_round_trips(self):
        source = corpus_source("Linpack")
        module = compile_to_module(source, prune_phis=False)
        decoded = decode_module(encode_module(module))
        verify_module(decoded)

    def test_class_hierarchy_survives(self):
        source = """
        class Animal { int legs() { return 0; } }
        class Cat extends Animal { int legs() { return 4; } }
        class Main { static void main() {
            Animal a = new Cat();
            System.out.println(a.legs());
        } }
        """
        module = compile_to_module(source)
        decoded = decode_module(encode_module(module))
        cat = decoded.world.require("Cat")
        animal = decoded.world.require("Animal")
        assert cat.superclass is animal
        assert len(cat.vtable) >= 1
        result = Interpreter(decoded).run_main("Main")
        assert result.stdout == "4\n"

    def test_string_constants_survive(self):
        source = ('class T { static void main() '
                  '{ System.out.println("héllo\\nwörld"); } }')
        module = compile_to_module(source)
        decoded = decode_module(encode_module(module))
        result = Interpreter(decoded).run_main("T")
        assert result.stdout == "héllo\nwörld\n"

    def test_float_and_double_bits_survive(self):
        source = ("class T { static void main() {"
                  "double d = -0.0; float f = 1.5f;"
                  "System.out.println(1.0 / d);"
                  "System.out.println(f * 2.0);"
                  "} }")
        module = compile_to_module(source)
        decoded = decode_module(encode_module(module))
        result = Interpreter(decoded).run_main("T")
        assert result.stdout == "-Infinity\n3.0\n"

    def test_size_report_accounts_all_classes(self):
        source = corpus_source("Parser")
        module = compile_to_module(source)
        report = {}
        wire = encode_module(module, size_report=report)
        header = report.pop("_header")
        phases = report.pop("_phases")
        assert header > 0
        assert set(phases) == {"cst", "instructions", "phi_operands"}
        assert set(report) == {info.name for info in module.classes}
        total_bits = header + sum(report.values())
        assert abs(total_bits - len(wire) * 8) < 8


class TestDecodeRejections:
    def test_bad_magic(self):
        with pytest.raises(DecodeError):
            decode_module(b"NOPE!" + b"\x00" * 16)

    def test_empty_stream(self):
        with pytest.raises(DecodeError):
            decode_module(b"")

    def test_trailing_garbage_rejected(self):
        module = compile_to_module("class T { static void main() { } }")
        wire = encode_module(module)
        with pytest.raises(DecodeError):
            decode_module(wire + b"\x00\x01")

    def test_truncations_rejected(self):
        module = compile_to_module(corpus_source("BitSieve"))
        wire = encode_module(module)
        for cut in range(1, len(wire), 37):
            with pytest.raises(DecodeError):
                decode_module(wire[:cut])

    def test_declared_java_lang_class_rejected(self):
        # forging a class named java.lang.String must not decode
        from repro.encode.bitio import BitWriter
        from repro.encode.common import MAGIC
        writer = BitWriter()
        writer.write_bytes(MAGIC)
        writer.write_gamma(1)           # one declared entry
        writer.write_flag(False)        # a class
        name = "java.lang.Evil".encode()
        writer.write_gamma(len(name))
        writer.write_bytes(name)
        with pytest.raises(DecodeError):
            decode_module(writer.getvalue())
