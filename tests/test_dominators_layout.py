"""Dominator computation and (l, r) layout on hand-built CFGs."""

import pytest

from repro.ssa.cst import (
    CstError,
    RBasic,
    RDoWhile,
    RIf,
    RLabeled,
    RLoop,
    RSeq,
    RTry,
    RWhile,
    derive_cfg,
)
from repro.ssa.dominators import compute_dominators, compute_dominators_lt
from repro.ssa.ir import Const, Function, Phi, Plane, Prim, Term
from repro.tsa.layout import FunctionLayout, LayoutError
from repro.typesys.ops import lookup_op
from repro.typesys.types import BOOLEAN, INT
from repro.typesys.world import ClassInfo, MethodInfo, World


def make_function(return_type=INT):
    world = World()
    info = world.require("java.lang.Object")
    method = MethodInfo("t", [], return_type, is_static=True)
    method.declaring = info
    return Function(method, info)


def diamond():
    """entry -> (a | b) -> join"""
    fn = make_function()
    entry = fn.new_block()
    fn.entry = entry
    cond = Const(BOOLEAN, True)
    entry.append(cond)
    seed = Const(INT, 1)
    entry.append(seed)
    entry.term = Term("branch", cond)
    a = fn.new_block()
    va = Prim(lookup_op(INT, "neg"), [seed])
    a.append(va)
    a.term = Term("fall")
    b = fn.new_block()
    vb = Prim(lookup_op(INT, "compl"), [seed])
    b.append(vb)
    b.term = Term("fall")
    join = fn.new_block()
    phi = Phi(Plane.of_type(INT))
    phi.add_operand(va)
    phi.add_operand(vb)
    join.append(phi)
    join.term = Term("return", phi)
    fn.cst = RSeq([RIf(entry, RBasic(a), RBasic(b)), RBasic(join)])
    derive_cfg(fn)
    return fn, entry, a, b, join, seed, va, vb, phi


class TestDominators:
    def test_diamond_idoms(self):
        fn, entry, a, b, join, *_ = diamond()
        tree = compute_dominators(fn)
        assert tree.idom[a] is entry
        assert tree.idom[b] is entry
        assert tree.idom[join] is entry  # not a or b

    def test_dominates_is_reflexive_and_transitive(self):
        fn, entry, a, b, join, *_ = diamond()
        tree = compute_dominators(fn)
        assert tree.dominates(entry, entry)
        assert tree.dominates(entry, join)
        assert not tree.dominates(a, join)
        assert not tree.dominates(a, b)

    def test_level_of(self):
        fn, entry, a, b, join, *_ = diamond()
        tree = compute_dominators(fn)
        assert tree.level_of(a, a) == 0
        assert tree.level_of(a, entry) == 1
        with pytest.raises(ValueError):
            tree.level_of(join, a)

    def test_loop_header_dominates_body_and_exit(self):
        fn = make_function()
        entry = fn.new_block()
        fn.entry = entry
        cond = Const(BOOLEAN, True)
        entry.append(cond)
        seed = Const(INT, 3)
        entry.append(seed)
        entry.term = Term("fall")
        header = fn.new_block()
        header.term = Term("branch", cond)
        body = fn.new_block()
        body.term = Term("fall")
        tail = fn.new_block()
        tail.term = Term("return", seed)
        fn.cst = RSeq([RBasic(entry), RWhile(header, RBasic(body)),
                       RBasic(tail)])
        derive_cfg(fn)
        tree = compute_dominators(fn)
        assert tree.idom[body] is header
        assert tree.idom[tail] is header
        # back edge exists
        assert any(p is body for p, _ in header.preds)

    def test_algorithms_agree_on_irregular_shapes(self):
        # loop with two breaks and a labeled region
        fn = make_function()
        entry = fn.new_block()
        fn.entry = entry
        cond = Const(BOOLEAN, True)
        entry.append(cond)
        value = Const(INT, 0)
        entry.append(value)
        entry.term = Term("fall")
        b1 = fn.new_block()
        b1.term = Term("branch", cond)
        b2 = fn.new_block()
        b2.term = Term("break", None, 0)
        b3 = fn.new_block()
        b3.term = Term("continue", None, 0)
        tail = fn.new_block()
        tail.term = Term("return", value)
        fn.cst = RSeq([
            RBasic(entry),
            RLoop(RSeq([RIf(b1, RBasic(b2), RBasic(b3))])),
            RBasic(tail)])
        derive_cfg(fn)
        chk = compute_dominators(fn)
        lt = compute_dominators_lt(fn)
        assert {b.id: (p.id if p else None) for b, p in chk.idom.items()} \
            == {b.id: (p.id if p else None) for b, p in lt.idom.items()}


class TestDerivation:
    def test_break_depth_out_of_range_rejected(self):
        fn = make_function()
        entry = fn.new_block()
        fn.entry = entry
        entry.term = Term("break", None, 0)
        fn.cst = RSeq([RBasic(entry)])
        with pytest.raises(CstError, match="break"):
            derive_cfg(fn)

    def test_dangling_fall_rejected(self):
        fn = make_function()
        entry = fn.new_block()
        fn.entry = entry
        entry.term = Term("fall")
        fn.cst = RSeq([RBasic(entry)])
        with pytest.raises(CstError, match="falls off"):
            derive_cfg(fn)

    def test_if_without_branch_terminator_rejected(self):
        fn = make_function()
        entry = fn.new_block()
        fn.entry = entry
        entry.term = Term("fall")  # should be branch
        a = fn.new_block()
        a.term = Term("return", None)
        b = fn.new_block()
        b.term = Term("return", None)
        fn.cst = RSeq([RIf(entry, RBasic(a), RBasic(b))])
        with pytest.raises(CstError, match="branch"):
            derive_cfg(fn)

    def test_exception_edge_outside_try_rejected(self):
        fn = make_function()
        entry = fn.new_block()
        fn.entry = entry
        entry.term = Term("return", None)
        fn.cst = RSeq([RBasic(entry, exc=True)])
        with pytest.raises(CstError, match="exception edge"):
            derive_cfg(fn)


class TestLayout:
    def test_register_numbers_fill_in_order(self):
        fn, entry, a, b, join, seed, va, vb, phi = diamond()
        layout = FunctionLayout(fn)
        # entry: boolean plane reg0 = cond; int plane reg0 = seed
        assert layout.position[seed.id][2] == 0
        assert layout.position[va.id][2] == 0  # first int in block a
        assert layout.position[phi.id][2] == 0

    def test_ref_levels(self):
        fn, entry, a, b, join, seed, va, vb, phi = diamond()
        layout = FunctionLayout(fn)
        assert layout.ref_of(a, seed) == (1, 0)       # one level up
        assert layout.ref_of(a, va) == (0, 0)         # same block
        assert layout.ref_of(join, seed) == (1, 0)    # idom(join) = entry

    def test_phi_ref_relative_to_pred(self):
        fn, entry, a, b, join, seed, va, vb, phi = diamond()
        layout = FunctionLayout(fn)
        assert layout.phi_ref(a, va) == (0, 0)
        assert layout.phi_ref(b, vb) == (0, 0)
        assert layout.phi_ref(b, seed) == (1, 0)

    def test_cross_branch_reference_unrepresentable(self):
        fn, entry, a, b, join, seed, va, vb, phi = diamond()
        layout = FunctionLayout(fn)
        with pytest.raises(LayoutError):
            layout.ref_of(b, va)
        with pytest.raises(LayoutError):
            layout.ref_of(join, vb)

    def test_flat_index_round_trip_with_partial_block(self):
        fn, entry, a, b, join, seed, va, vb, phi = diamond()
        layout = FunctionLayout(fn)
        plane = Plane.of_type(INT)
        # from block a with 1 int already defined: alphabet = 1 + entry's 1
        assert layout.alphabet_size(a, plane, 1) == 2
        flat = layout.flat_index(a, va, 1)
        assert layout.resolve_flat(a, plane, 1, flat) is va
        flat_seed = layout.flat_index(a, seed, 1)
        assert layout.resolve_flat(a, plane, 1, flat_seed) is seed
        assert flat != flat_seed

    def test_preorder_starts_at_entry(self):
        fn, entry, *_ = diamond()
        layout = FunctionLayout(fn)
        assert layout.order[0] is entry
        assert set(b.id for b in layout.order) == \
            {b.id for b in fn.blocks}
