"""The SafeTSA lint driver: rule registry + structured reports.

A lint run combines two diagnostic sources:

* the verifier in collect-all mode (:func:`repro.tsa.verifier.
  collect_diagnostics`) -- every well-formedness *error* plus the
  warning-severity findings fail-fast verification tolerates
  (unreachable blocks, ``STSA-CFG-101``);
* the registered analysis-backed rules below -- dead phis
  (``STSA-PHI-101``), and the redundant ``nullcheck``/``idxcheck``
  findings (``STSA-NULL-101`` / ``STSA-IDX-101``) the nullness and
  range dataflow facts prove can never trap.  These are the producer's
  Figure 6 check-elimination opportunities surfaced as diagnostics.

Rules are registered by name in :data:`LINT_RULES` via the
:func:`rule` decorator; a rule takes ``(module, function)`` and yields
:class:`Diagnostic` objects.  :func:`lint_module` runs everything and
returns the deterministically sorted findings; :func:`lint_report`
shapes them into the stable JSON schema ``repro-cc lint --json`` emits.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.analysis.diagnostics import (
    Diagnostic,
    count_by_severity,
    sort_diagnostics,
)
from repro.analysis.liveness import observable_values
from repro.analysis.nullness import analyze_nullness
from repro.analysis.range import analyze_ranges
from repro.ssa import ir
from repro.ssa.ir import Function, Module
from repro.tsa.verifier import collect_diagnostics

#: rule name -> rule(module, function) yielding diagnostics
LINT_RULES: dict[str, Callable[[Module, Function], Iterator[Diagnostic]]] \
    = {}


def rule(name: str):
    """Register a lint rule under ``name`` (see :data:`LINT_RULES`)."""
    def register(fn):
        LINT_RULES[name] = fn
        return fn
    return register


def _uses_analyses(fn):
    """Mark a rule as accepting the ``analyses`` keyword; unmarked rules
    (including externally registered ones) keep the historical
    ``rule(module, function)`` call contract."""
    fn.uses_analyses = True
    return fn


@rule("dead-phi")
@_uses_analyses
def _dead_phi(module: Module, function: Function,
              analyses=None) -> Iterator[Diagnostic]:
    """A phi with no path to an observable use -- including cycles of
    phis that only feed each other -- does useful work for nobody."""
    observable = analyses.get("observable", function) \
        if analyses is not None else observable_values(function)
    for block in function.reachable_blocks():
        for phi in block.phis:
            if phi.id not in observable:
                yield Diagnostic(
                    "STSA-PHI-101",
                    f"phi v{phi.id} has no observable use",
                    function=function.name, block=block.id, instr=phi.id)


@rule("redundant-nullcheck")
@_uses_analyses
def _redundant_nullcheck(module: Module, function: Function,
                         analyses=None) -> Iterator[Diagnostic]:
    facts = analyses.get("nullness", function) \
        if analyses is not None else analyze_nullness(function)
    for block in function.reachable_blocks():
        for instr in block.instrs:
            if isinstance(instr, ir.NullCheck) \
                    and facts.is_nonnull_before(instr.operands[0], instr):
                yield Diagnostic(
                    "STSA-NULL-101",
                    f"nullcheck v{instr.id}: v{instr.operands[0].id} is "
                    "provably non-null here",
                    function=function.name, block=block.id,
                    instr=instr.id)


@rule("redundant-idxcheck")
@_uses_analyses
def _redundant_idxcheck(module: Module, function: Function,
                        analyses=None) -> Iterator[Diagnostic]:
    facts = analyses.get("range", function) \
        if analyses is not None else analyze_ranges(function)
    for block in function.reachable_blocks():
        for instr in block.instrs:
            if isinstance(instr, ir.IdxCheck) \
                    and facts.idxcheck_redundant(instr):
                yield Diagnostic(
                    "STSA-IDX-101",
                    f"idxcheck v{instr.id}: v{instr.index.id} is provably "
                    f"within v{instr.array.id}'s bounds here",
                    function=function.name, block=block.id,
                    instr=instr.id)


def lint_function(module: Module, function: Function,
                  rules: Optional[Iterable[str]] = None,
                  include_verifier: bool = True,
                  analyses=None) -> list[Diagnostic]:
    """Run the verifier (collect mode) and the selected lint rules.

    ``analyses`` is an optional :class:`repro.analysis.manager.
    AnalysisManager`; rules marked as analysis-aware consume cached
    results through it instead of re-solving per rule.
    """
    names = list(rules) if rules is not None else sorted(LINT_RULES)
    diagnostics: list[Diagnostic] = []
    if include_verifier:
        diagnostics.extend(
            collect_diagnostics(module, function, analyses=analyses))
    for name in names:
        checker = LINT_RULES[name]
        if analyses is not None and getattr(checker, "uses_analyses",
                                            False):
            diagnostics.extend(checker(module, function, analyses))
        else:
            diagnostics.extend(checker(module, function))
    return sort_diagnostics(diagnostics)


def lint_module(module: Module,
                rules: Optional[Iterable[str]] = None,
                include_verifier: bool = True,
                analyses=None) -> list[Diagnostic]:
    """Lint every function of ``module``; deterministically sorted."""
    diagnostics: list[Diagnostic] = []
    for function in module.functions.values():
        diagnostics.extend(lint_function(
            module, function, rules=rules,
            include_verifier=include_verifier, analyses=analyses))
    return sort_diagnostics(diagnostics)


def lint_report(diagnostics: list[Diagnostic]) -> dict:
    """The stable machine-readable report schema (``lint --json``)."""
    return {
        "schema": "repro-lint/1",
        "counts": count_by_severity(diagnostics),
        "diagnostics": [d.as_dict() for d in sort_diagnostics(diagnostics)],
    }
