"""Module decoder: wire bytes -> verified SafeTSA in-memory form.

The decoder is where "safety by construction" becomes operational: every
symbol it reads is drawn from an alphabet it computed itself -- the type
table it rebuilt, the member tables of the class it resolved, and the
registers visible on the required plane at the current point of the
dominator tree.  A bit pattern can therefore denote *only* well-formed
references; streams that would need anything else fail with
:class:`DecodeError`.  The handful of rules that are cheaper to check
than to make unrepresentable (trapping instructions must close their
subblock, ``downcast`` must widen, ``xprimitive`` must name a trapping
operation) are enforced inline -- these are the paper's "simple counter"
checks.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.encode.bitio import BitIOError, BitReader
from repro.encode.common import (
    MAGIC,
    OPCODES,
    PRIMITIVE_BASES,
    REGIONS,
    TERM_KINDS,
)
from repro.ssa.cst import (
    CstError,
    RBasic,
    RDoWhile,
    RIf,
    RLabeled,
    RLoop,
    RSeq,
    RTry,
    RWhile,
    Region,
    _entry_block,
    derive_cfg,
    map_exception_contexts,
)
from repro.ssa.dominators import compute_dominators
from repro.ssa import ir
from repro.ssa.ir import (
    Block,
    Function,
    Instr,
    Module,
    Phi,
    Plane,
    Term,
)
from repro.typesys.ops import OPS_BY_TYPE
from repro.typesys.table import TypeTable
from repro.typesys.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PrimitiveType,
    Type,
    VOID,
)
from repro.typesys.world import ClassInfo, FieldInfo, MethodInfo, World


class DecodeError(Exception):
    """The byte stream does not encode a well-formed SafeTSA module.

    Carries a stable ``code`` naming the rejection category --
    ``DEC-IO`` (ran off the stream / symbol out of its bounded
    alphabet), ``DEC-MAGIC``, ``DEC-LIMIT`` (a declared count exceeds
    its sanity bound), ``DEC-CST`` (bad control structure),
    ``DEC-EXC`` (exception discipline), ``DEC-REF`` / ``DEC-TRAP-REF``
    (value references), ``DEC-TRAILING``, ``DEC-WORLD`` /
    ``DEC-TABLE`` / ``DEC-VALUE`` (wrapped lower-layer validation), and
    ``DEC-MALFORMED`` for the remaining shape rules.  The fuzzing
    rejection taxonomy and the attack-fixture manifest key on these
    codes, so they must stay stable.

    Mid-function rejections additionally carry a ``(function, block,
    instr)`` location the way :class:`repro.tsa.verifier.VerifyError`
    does -- ``function`` is the method's qualified name, ``block`` the
    SafeTSA block id, and ``instr`` the *index* of the instruction
    within its block (value ids are not stable mid-decode), so fuzz
    minimization and the fused loader report comparable locations.
    """

    def __init__(self, message: str, code: str = "DEC-MALFORMED", *,
                 function: Optional[str] = None,
                 block: Optional[int] = None,
                 instr: Optional[int] = None):
        self.code = code
        self.function = function
        self.block = block
        self.instr = instr
        super().__init__(f"{message} [{code}]")

    def attach(self, function: Optional[str] = None,
               block: Optional[int] = None,
               instr: Optional[int] = None) -> None:
        """Fill in location fields that are still unknown (an inner
        raise site that already knows its location wins)."""
        if self.function is None:
            self.function = function
        if self.block is None:
            self.block = block
        if self.instr is None:
            self.instr = instr

    def location(self) -> str:
        parts = []
        if self.function is not None:
            parts.append(self.function)
        if self.block is not None:
            parts.append(f"B{self.block}")
        if self.instr is not None:
            parts.append(f"i{self.instr}")
        return ":".join(parts) or "<module>"


def _read_utf8(reader: BitReader) -> str:
    length = reader.read_gamma()
    if length > 1 << 20:
        raise DecodeError("unreasonable string length", "DEC-LIMIT")
    try:
        return reader.read_bytes(length).decode("utf-8")
    except UnicodeDecodeError as error:
        raise DecodeError(f"bad utf-8: {error}") from None


class _ModuleDecoder:
    def __init__(self, data: bytes):
        self.data = data
        self.reader = BitReader(data)
        self.world = World()
        self.table = TypeTable(self.world)
        self.module = Module(self.world, self.table)
        #: per decoded body, ``(start_bit, end_bit)`` in the stream --
        #: a read-side index only (the format has no length prefixes);
        #: the loader persists it so warm loads can seek to one body
        self.boundaries: list[tuple[int, int]] = []

    def decode(self) -> Module:
        bodies = self.decode_header()
        self._decode_bodies(bodies)
        self._require_end()
        return self.module

    def decode_header(self) -> list[MethodInfo]:
        """Decode everything up to (not including) the function bodies:
        magic, type table, hierarchy, member tables.  Returns the
        methods whose bodies follow, in stream order."""
        reader = self.reader
        if reader.read_bytes(len(MAGIC)) != MAGIC:
            raise DecodeError("bad magic", "DEC-MAGIC")
        declared_count = reader.read_gamma()
        if declared_count > 1 << 16:
            raise DecodeError("unreasonable type table size", "DEC-LIMIT")
        class_infos: list[ClassInfo] = []
        for _ in range(declared_count):
            if reader.read_flag():  # array entry
                elem_index = reader.read_bounded(len(self.table))
                elem = self.table.type_at(elem_index)
                if elem is VOID:
                    raise DecodeError("array of void")
                array = ArrayType(elem)
                if array in self.table:
                    raise DecodeError("duplicate array entry")
                self.table.intern(array)
            else:
                name = _read_utf8(reader)
                if self.world.lookup(name) is not None and \
                        name in self.world.classes:
                    raise DecodeError(f"duplicate class {name}")
                if not name or name.startswith("java."):
                    raise DecodeError(f"illegal class name {name!r}")
                info = ClassInfo(name)
                self.world.define_class(info)
                self.table.declare_class(info)
                class_infos.append(info)
        table_size = len(self.table)
        for info in class_infos:
            super_type = self.table.type_at(reader.read_bounded(table_size))
            if not isinstance(super_type, ClassType):
                raise DecodeError("superclass is not a class type")
            info.super_name = super_type.name
            info.is_abstract = reader.read_flag()
        self._check_hierarchy(class_infos)
        bodies: list[MethodInfo] = []
        for info in class_infos:
            bodies.extend(self._decode_members(info, table_size))
        self.world.link()
        self.table.invalidate_member_tables()
        self.module.classes = class_infos
        return bodies

    def _decode_bodies(self, bodies: list[MethodInfo]) -> None:
        for method in bodies:
            self.module.add_function(self._decode_body(method))

    def _decode_body(self, method: MethodInfo) -> Function:
        start = self.reader.bit_position()
        decoder = self._function_decoder(method)
        function = decoder.decode()
        self.boundaries.append((start, self.reader.bit_position()))
        self._on_function(decoder, function)
        return function

    def _function_decoder(self, method: MethodInfo,
                          reader: Optional[BitReader] = None):
        """Hook: the fused loader substitutes its verifying subclass."""
        return _FunctionDecoder(self, method, reader)

    def _on_function(self, decoder, function: Function) -> None:
        """Hook: called after each body decodes (fused residual checks)."""

    def _require_end(self) -> None:
        """The stream must be fully consumed (only zero padding to the
        byte boundary may remain): trailing data cannot ride along."""
        reader = self.reader
        remaining = reader.bits_remaining()
        if remaining >= 8:
            raise DecodeError(f"{remaining} trailing bits after the "
                              "module", "DEC-TRAILING")
        if not reader.at_end():
            raise DecodeError("nonzero padding bits", "DEC-TRAILING")

    def _check_hierarchy(self, class_infos: list[ClassInfo]) -> None:
        for info in class_infos:
            seen = set()
            name: Optional[str] = info.name
            while name is not None:
                if name in seen:
                    raise DecodeError(f"cyclic class hierarchy at {name}")
                seen.add(name)
                parent = self.world.lookup(name)
                if parent is None:
                    raise DecodeError(f"unknown superclass {name}")
                name = parent.super_name

    def _decode_members(self, info: ClassInfo,
                        table_size: int) -> list[MethodInfo]:
        reader = self.reader
        bodies: list[MethodInfo] = []
        field_count = reader.read_gamma()
        if field_count > 1 << 14:
            raise DecodeError("unreasonable field count", "DEC-LIMIT")
        for _ in range(field_count):
            name = _read_utf8(reader)
            is_static = reader.read_flag()
            is_final = reader.read_flag()
            field_type = self.table.type_at(reader.read_bounded(table_size))
            if field_type is VOID:
                raise DecodeError("field of type void")
            info.add_field(FieldInfo(name, field_type, is_static, is_final))
        method_count = reader.read_gamma()
        if method_count > 1 << 14:
            raise DecodeError("unreasonable method count", "DEC-LIMIT")
        for _ in range(method_count):
            name = _read_utf8(reader)
            is_static = reader.read_flag()
            is_abstract = reader.read_flag()
            param_count = reader.read_gamma()
            if param_count > 255:
                raise DecodeError("unreasonable parameter count",
                                  "DEC-LIMIT")
            params = [self.table.type_at(reader.read_bounded(table_size))
                      for _ in range(param_count)]
            if any(p is VOID for p in params):
                raise DecodeError("parameter of type void")
            return_type = self.table.type_at(reader.read_bounded(table_size))
            method = MethodInfo(name, params, return_type,
                                is_static=is_static, is_abstract=is_abstract)
            info.add_method(method)
            if reader.read_flag():
                if is_abstract:
                    raise DecodeError("abstract method with a body")
                bodies.append(method)
        return bodies


class _FunctionDecoder:
    def __init__(self, parent: _ModuleDecoder, method: MethodInfo,
                 reader: Optional[BitReader] = None):
        # a private reader lets the loader decode bodies off worker
        # threads, each seeking to its own recorded boundary
        self.reader = parent.reader if reader is None else reader
        self.world = parent.world
        self.table = parent.table
        self.module = parent.module
        self.method = method
        self.function = Function(method, method.declaring)
        #: block id -> plane -> list of value instrs, in register order
        self.planes: dict[int, dict[Plane, list[Instr]]] = {}
        self._defined: dict[Plane, int] = {}
        # incremental dominator scopes: per block, the per-plane chain
        # of (registers, parent-node) segments visible at its end, and
        # the per-plane visible-register counts -- maintained along the
        # dominator tree so references cost O(defining ancestors on the
        # plane) instead of two walks over the whole idom chain
        self._chains: dict[int, dict[Plane, tuple]] = {}
        self._counts: dict[int, dict[Plane, int]] = {}
        self._chain: dict[Plane, tuple] = {}
        self._inherited_chain: dict[Plane, tuple] = {}
        self._entry_counts: dict[Plane, int] = {}
        self._current_block: Optional[Block] = None
        # error-location context (mirrors VerifyError's location)
        self._ctx_block: Optional[int] = None
        self._ctx_instr: Optional[int] = None

    # ==================================================================

    def decode(self) -> Function:
        try:
            return self._decode()
        except DecodeError as error:
            error.attach(function=self.function.name,
                         block=self._ctx_block, instr=self._ctx_instr)
            raise
        except BitIOError as error:
            raise DecodeError(str(error), "DEC-IO",
                              function=self.function.name,
                              block=self._ctx_block,
                              instr=self._ctx_instr) from None

    def _decode(self) -> Function:
        try:
            cst = self._decode_region(break_depth=0, loop_depth=0,
                                      in_try=False)
        except RecursionError:
            raise DecodeError("control structure nests too deeply",
                              "DEC-CST") from None
        self.function.cst = cst
        if not self.function.blocks:
            raise DecodeError("method body has no blocks", "DEC-CST")
        self.function.entry = self.function.blocks[0]
        try:
            derive_cfg(self.function)
        except CstError as error:
            raise DecodeError(f"bad control structure: {error}",
                              "DEC-CST") from None
        self.domtree = compute_dominators(self.function)
        if self.function.entry.preds:
            raise DecodeError("entry block has predecessors", "DEC-CST")
        self.dispatch_of = map_exception_contexts(cst)
        for block in self.domtree.preorder:
            self._decode_block(block)
        self._current_block = None
        for block in self.domtree.preorder:
            self._ctx_block, self._ctx_instr = block.id, None
            self._decode_phi_operands(block)
        self._ctx_block = self._ctx_instr = None
        return self.function

    # -- phase 1 -----------------------------------------------------------

    def _decode_region(self, break_depth: int, loop_depth: int,
                       in_try: bool) -> Region:
        reader = self.reader
        symbol = REGIONS[reader.read_bounded(len(REGIONS))]
        if symbol == "basic":
            block = self.function.new_block()
            kind = TERM_KINDS[reader.read_bounded(len(TERM_KINDS))]
            depth = 0
            if kind == "break":
                if break_depth == 0:
                    raise DecodeError("break outside a breakable region",
                                      "DEC-CST")
                depth = reader.read_bounded(break_depth)
            elif kind == "continue":
                if loop_depth == 0:
                    raise DecodeError("continue outside a loop", "DEC-CST")
                depth = reader.read_bounded(loop_depth)
            block.term = Term(kind, None, depth)
            exc = reader.read_flag() if in_try else False
            return RBasic(block, exc)
        if symbol == "seq":
            count = self.reader.read_gamma()
            if count > 1 << 16:
                raise DecodeError("unreasonable sequence length",
                                  "DEC-LIMIT")
            return RSeq([self._decode_region(break_depth, loop_depth, in_try)
                         for _ in range(count)])
        if symbol in ("if", "ifelse"):
            cond = self.function.new_block()
            cond.term = Term("branch", None)
            then_region = self._decode_region(break_depth, loop_depth,
                                              in_try)
            else_region = None
            if symbol == "ifelse":
                else_region = self._decode_region(break_depth, loop_depth,
                                                  in_try)
            return RIf(cond, then_region, else_region)
        if symbol == "while":
            header = self.function.new_block()
            header.term = Term("branch", None)
            body = self._decode_region(break_depth + 1, loop_depth + 1,
                                       in_try)
            return RWhile(header, body)
        if symbol == "dowhile":
            body = self._decode_region(break_depth + 1, loop_depth + 1,
                                       in_try)
            cond = self.function.new_block()
            cond.term = Term("branch", None)
            return RDoWhile(body, cond)
        if symbol == "loop":
            return RLoop(self._decode_region(break_depth + 1, loop_depth + 1,
                                             in_try))
        if symbol == "labeled":
            return RLabeled(self._decode_region(break_depth + 1, loop_depth,
                                                in_try))
        if symbol == "try":
            body = self._decode_region(break_depth, loop_depth, True)
            handler = self._decode_region(break_depth, loop_depth, in_try)
            try:
                dispatch = _entry_block(handler)
            except CstError as error:
                raise DecodeError(str(error), "DEC-CST") from None
            return RTry(body, dispatch, handler)
        raise DecodeError(f"unknown region symbol {symbol}", "DEC-CST")

    # -- phase 2 -----------------------------------------------------------

    def _read_plane(self) -> Plane:
        type = self.table.type_at(self.reader.read_bounded(len(self.table)))
        if type is VOID:
            raise DecodeError("plane of type void")
        if type.is_reference():
            if self.reader.read_flag():
                return Plane.safe(type)
            return Plane("ref", type)
        return Plane("prim", type)

    def _type_ref(self) -> Type:
        return self.table.type_at(self.reader.read_bounded(len(self.table)))

    def _class_ref(self) -> ClassInfo:
        type = self._type_ref()
        if not isinstance(type, ClassType):
            raise DecodeError(f"{type} is not a class type")
        return self.world.class_of(type)

    def _array_ref(self) -> ArrayType:
        type = self._type_ref()
        if not isinstance(type, ArrayType):
            raise DecodeError(f"{type} is not an array type")
        return type

    def _ref_type_ref(self) -> Type:
        type = self._type_ref()
        if not type.is_reference():
            raise DecodeError(f"{type} is not a reference type")
        return type

    def _resolve_ref(self, block: Block, plane: Plane,
                     defined: int) -> Instr:
        """Read one (flattened) value reference on ``plane``.

        The alphabet size and the register lookup come from the scope
        chains maintained incrementally along the dominator tree --
        same alphabet values (hence identical symbol widths) as the
        seed decoder's double idom-chain walk, but each reference now
        costs only the ancestors that actually define on the plane."""
        if block is self._current_block:
            # phase 2: the block being decoded; its own registers are
            # counted by ``defined``, the ancestors by the entry counts
            alphabet = self._entry_counts.get(plane, 0) + defined
            chain = self._chain
        else:
            # phase 3 (phi operands at a predecessor): the block is
            # fully decoded, so its end-of-block counts are recorded.
            # An unreachable predecessor has no record: its alphabet is
            # just ``defined`` (always 0), as in the seed decoder.
            counts = self._counts.get(block.id)
            alphabet = counts.get(plane, 0) if counts is not None \
                else defined
            chain = self._chains.get(block.id, {})
        index = self.reader.read_bounded(alphabet)
        if index < defined:
            return self.planes[block.id][plane][index]
        index -= defined
        node = chain.get(plane)
        if defined and node is not None:
            node = node[1]  # skip the block's own segment
        while node is not None:
            regs, node = node
            if index < len(regs):
                return self._check_trap_visibility(block, regs[index])
            index -= len(regs)
        raise DecodeError("unresolvable value reference", "DEC-REF")

    def _check_trap_visibility(self, use_block: Block,
                               instr: Instr) -> Instr:
        """Dominance alone over-approximates visibility for a trapping
        subblock tail: the exception edge leaves before the result is
        assigned, so the reference is only sound beneath the tail's
        normal successor (see ir.trapping_tail_gate)."""
        gate = ir.trapping_tail_gate(instr.block, instr)
        if gate is not None and instr.block is not use_block \
                and not self.domtree.dominates(gate, use_block):
            raise DecodeError(
                f"reference to trapping v{instr.id} from B{use_block.id}, "
                "reachable through its exception edge", "DEC-TRAP-REF")
        return instr

    def _ref(self, block: Block, plane: Plane) -> Instr:
        return self._resolve_ref(block, plane,
                                 self._defined.get(plane, 0))

    def _record(self, block: Block, instr: Instr) -> Instr:
        block.append(instr)
        plane = instr.plane
        if plane is not None:
            regs = self.planes[block.id].setdefault(plane, [])
            if not regs:
                # first definition on this plane here: push the block's
                # own segment onto a copy-on-write chain
                chain = self._chain
                if chain is self._inherited_chain:
                    chain = self._chain = dict(chain)
                    self._chains[block.id] = chain
                chain[plane] = (regs, self._inherited_chain.get(plane))
            regs.append(instr)
            self._defined[plane] = self._defined.get(plane, 0) + 1
        return instr

    def _decode_block(self, block: Block) -> None:
        reader = self.reader
        self.planes[block.id] = {}
        self._defined = {}
        self._current_block = block
        self._ctx_block, self._ctx_instr = block.id, None
        parent = self.domtree.idom.get(block)
        if parent is None:
            inherited_chain: dict[Plane, tuple] = {}
            inherited_counts: dict[Plane, int] = {}
        else:
            inherited_chain = self._chains[parent.id]
            inherited_counts = self._counts[parent.id]
        self._inherited_chain = inherited_chain
        self._chain = inherited_chain  # copied on the first definition
        self._chains[block.id] = inherited_chain
        self._entry_counts = inherited_counts
        phi_count = reader.read_gamma()
        if phi_count > 1 << 16:
            raise DecodeError("unreasonable phi count", "DEC-LIMIT")
        if phi_count and not block.preds:
            raise DecodeError("phis in a block without predecessors")
        for _ in range(phi_count):
            plane = self._read_plane()
            phi = Phi(plane)
            self._record(block, phi)
        instr_count = reader.read_gamma()
        if instr_count > 1 << 20:
            raise DecodeError("unreasonable instruction count", "DEC-LIMIT")
        dispatch = self.dispatch_of.get(block.id)
        exc_edge = block.exc_succ()
        for position in range(instr_count):
            self._ctx_instr = position
            instr = self._decode_instr(block)
            if instr.traps and dispatch is not None:
                if position != instr_count - 1:
                    raise DecodeError(
                        "trapping instruction does not close its subblock",
                        "DEC-EXC")
                if exc_edge is not dispatch:
                    raise DecodeError(
                        "trapping subblock lacks its exception edge",
                        "DEC-EXC")
            if isinstance(instr, ir.CaughtExc):
                kinds = {kind for _, kind in block.preds}
                if kinds != {"exc"}:
                    raise DecodeError("caughtexc outside a dispatch block",
                                      "DEC-EXC")
        term = block.term
        if exc_edge is not None and term.kind == "fall":
            if not (block.instrs and block.instrs[-1].traps):
                raise DecodeError("exception edge without exception point",
                                  "DEC-EXC")
        if term.kind == "branch":
            term.value = self._ref(block, Plane.of_type(BOOLEAN))
            term.value.users.add(ir._TermUse(term))
        elif term.kind == "return":
            expected = self.method.return_type
            if expected is not VOID:
                term.value = self._ref(block, Plane.of_type(expected))
                term.value.users.add(ir._TermUse(term))
        elif term.kind == "throw":
            term.value = self._ref(
                block, Plane.safe(ClassType("java.lang.Throwable")))
            term.value.users.add(ir._TermUse(term))
        if self._defined:
            counts = dict(inherited_counts)
            for plane, defined in self._defined.items():
                counts[plane] = counts.get(plane, 0) + defined
        else:
            counts = inherited_counts  # nothing defined: share the dict
        self._counts[block.id] = counts

    def _decode_instr(self, block: Block) -> Instr:
        opcode = OPCODES[self.reader.read_bounded(len(OPCODES))]
        handler = getattr(self, "_op_" + opcode)
        instr = handler(block)
        return self._record(block, instr)

    # -- per-opcode readers --------------------------------------------------

    def _require_entry(self, block: Block, what: str) -> None:
        if block is not self.function.entry:
            raise DecodeError(f"{what} outside the entry block")

    def _op_const(self, block: Block) -> Instr:
        self._require_entry(block, "const")
        reader = self.reader
        type = self._type_ref()
        if type is INT:
            value = reader.read_signed_gamma()
            if not -(2**31) <= value < 2**31:
                raise DecodeError("int constant out of range")
        elif type is LONG:
            value = reader.read_signed_gamma()
            if not -(2**63) <= value < 2**63:
                raise DecodeError("long constant out of range")
        elif type is BOOLEAN:
            value = reader.read_flag()
        elif type is CHAR:
            value = reader.read_bits(16)
        elif type is FLOAT:
            value = struct.unpack(">f",
                                  struct.pack(">I", reader.read_bits(32)))[0]
        elif type is DOUBLE:
            value = struct.unpack(">d",
                                  struct.pack(">Q", reader.read_bits(64)))[0]
        elif type == ClassType("java.lang.String"):
            value = _read_utf8(reader) if reader.read_flag() else None
        elif type.is_reference():
            value = None
        else:
            raise DecodeError(f"constant of type {type}")
        return ir.Const(type, value)

    def _op_param(self, block: Block) -> Instr:
        self._require_entry(block, "param")
        method = self.method
        arity = len(method.param_types) + (0 if method.is_static else 1)
        if arity == 0:
            raise DecodeError("param in a method without parameters")
        index = self.reader.read_bounded(arity)
        if method.is_static:
            type = method.param_types[index]
            is_this = False
        elif index == 0:
            type = method.declaring.type
            is_this = True
        else:
            type = method.param_types[index - 1]
            is_this = False
        param = ir.Param(index, type, is_this=is_this)
        self.function.params.append(param)
        return param

    def _decode_prim(self, block: Block, expect_traps: bool) -> Instr:
        base_index = self.reader.read_bounded(PRIMITIVE_BASES)
        base = self.table.type_at(base_index)
        ops = OPS_BY_TYPE[base]
        operation = ops[self.reader.read_bounded(len(ops))]
        if operation.traps != expect_traps:
            raise DecodeError(
                f"{operation.qualified_name} used with the wrong "
                "primitive/xprimitive opcode")
        args = [self._ref(block, Plane.of_type(param))
                for param in operation.params]
        return ir.Prim(operation, args)

    def _op_primitive(self, block: Block) -> Instr:
        return self._decode_prim(block, expect_traps=False)

    def _op_xprimitive(self, block: Block) -> Instr:
        return self._decode_prim(block, expect_traps=True)

    def _op_refcmp(self, block: Block) -> Instr:
        is_eq = self.reader.read_flag()
        plane_type = self._ref_type_ref()
        plane = Plane.of_type(plane_type)
        left = self._ref(block, plane)
        right = self._ref(block, plane)
        return ir.RefCmp(is_eq, plane_type, left, right)

    def _op_nullcheck(self, block: Block) -> Instr:
        ref_type = self._ref_type_ref()
        value = self._ref(block, Plane.of_type(ref_type))
        return ir.NullCheck(ref_type, value)

    def _op_idxcheck(self, block: Block) -> Instr:
        array_type = self._array_ref()
        array = self._ref(block, Plane.safe(array_type))
        index = self._ref(block, Plane.of_type(INT))
        return ir.IdxCheck(array, index)

    def _op_upcast(self, block: Block) -> Instr:
        target = self._ref_type_ref()
        source_type = self._ref_type_ref()
        value = self._ref(block, Plane.of_type(source_type))
        return ir.Upcast(target, value)

    def _op_downcast(self, block: Block) -> Instr:
        target = self._read_plane()
        source = self._read_plane()
        if target.kind not in ("ref", "safe") \
                or source.kind not in ("ref", "safe"):
            raise DecodeError("downcast between non-reference planes")
        if source.kind == "ref" and target.kind == "safe":
            raise DecodeError("downcast cannot make a value safe")
        if not self.world.is_subtype(source.type, target.type):
            raise DecodeError(f"downcast {source} -> {target} is not a "
                              "widening")
        value = self._ref(block, source)
        return ir.Downcast(target, value)

    def _field_access(self, block: Block, static: bool):
        base = self._class_ref()
        field_table = self.table.field_table(base)
        if not field_table:
            raise DecodeError(f"{base.name} has no fields")
        field = field_table[self.reader.read_bounded(len(field_table))]
        if field.is_static != static:
            raise DecodeError("static/instance field mismatch")
        obj = None
        if not static:
            obj = self._ref(block, Plane.safe(base.type))
        return base, field, obj

    def _op_getfield(self, block: Block) -> Instr:
        base, field, obj = self._field_access(block, static=False)
        return ir.GetField(base, obj, field)

    def _op_setfield(self, block: Block) -> Instr:
        base, field, obj = self._field_access(block, static=False)
        value = self._ref(block, Plane.of_type(field.type))
        return ir.SetField(base, obj, field, value)

    def _op_getstatic(self, block: Block) -> Instr:
        _base, field, _obj = self._field_access(block, static=True)
        return ir.GetStatic(field)

    def _op_setstatic(self, block: Block) -> Instr:
        _base, field, _obj = self._field_access(block, static=True)
        if field.is_final and field.declaring.is_builtin:
            raise DecodeError("write to a final library field")
        value = self._ref(block, Plane.of_type(field.type))
        return ir.SetStatic(field, value)

    def _op_getelt(self, block: Block) -> Instr:
        array_type = self._array_ref()
        array = self._ref(block, Plane.safe(array_type))
        index = self._ref(block, Plane.safe_index(array))
        return ir.GetElt(array_type, array, index)

    def _op_setelt(self, block: Block) -> Instr:
        array_type = self._array_ref()
        array = self._ref(block, Plane.safe(array_type))
        index = self._ref(block, Plane.safe_index(array))
        value = self._ref(block, Plane.of_type(array_type.element))
        return ir.SetElt(array_type, array, index, value)

    def _op_arraylen(self, block: Block) -> Instr:
        array_type = self._array_ref()
        array = self._ref(block, Plane.safe(array_type))
        return ir.ArrayLen(array_type, array)

    def _op_new(self, block: Block) -> Instr:
        info = self._class_ref()
        if info.is_abstract:
            raise DecodeError(f"new of abstract class {info.name}")
        return ir.New(info)

    def _op_newarray(self, block: Block) -> Instr:
        array_type = self._array_ref()
        length = self._ref(block, Plane.of_type(INT))
        return ir.NewArray(array_type, length)

    def _op_instanceof(self, block: Block) -> Instr:
        target = self._ref_type_ref()
        source_type = self._ref_type_ref()
        value = self._ref(block, Plane.of_type(source_type))
        return ir.InstanceOf(target, value)

    def _decode_call(self, block: Block, dispatch: bool) -> Instr:
        base = self._class_ref()
        method_table = self.table.method_table(base)
        if not method_table:
            raise DecodeError(f"{base.name} has no methods")
        method = method_table[self.reader.read_bounded(len(method_table))]
        if dispatch and method.is_static:
            raise DecodeError("xdispatch of a static method")
        operands: list[Instr] = []
        if not method.is_static:
            operands.append(self._ref(block, Plane.safe(base.type)))
        for param in method.param_types:
            operands.append(self._ref(block, Plane.of_type(param)))
        return ir.Call(base, method, operands, dispatch)

    def _op_xcall(self, block: Block) -> Instr:
        return self._decode_call(block, dispatch=False)

    def _op_xdispatch(self, block: Block) -> Instr:
        return self._decode_call(block, dispatch=True)

    def _op_caughtexc(self, block: Block) -> Instr:
        return ir.CaughtExc()

    # -- phase 3 -----------------------------------------------------------

    def _decode_phi_operands(self, block: Block) -> None:
        for phi in block.phis:
            for pred, kind in block.preds:
                defined = len(self.planes.get(pred.id, {})
                              .get(phi.plane, ()))
                operand = self._resolve_ref(pred, phi.plane, defined)
                # along an exception edge, only values defined *before*
                # the trap fires are available -- which excludes the
                # trapping tail itself
                if kind == "exc" and operand.traps \
                        and operand.block is pred \
                        and pred.instrs and pred.instrs[-1] is operand:
                    raise DecodeError(
                        f"phi operand v{operand.id} is the trapping tail "
                        f"of its own exception edge B{pred.id}",
                        "DEC-TRAP-REF")
                phi.add_operand(operand)


def decode_module(data: bytes, *, store=None) -> Module:
    """Decode (and thereby validate) a SafeTSA distribution unit.

    A v2 envelope (shared dictionaries / delta; ``STSA2``) is resolved
    to its v1 payload through ``store`` first -- resolution failures
    reject with their own stable codes (``DEC-DICT``,
    ``DEC-DELTA-BASE``, ``DEC-DELTA``, ``DEC-STREAM``) before any IR
    exists.  Everything else, v1 included, flows through the verifying
    decoder unchanged.
    """
    from repro.typesys.table import TypeTableError
    from repro.typesys.world import WorldError
    from repro.encode.format import resolve_stream
    data = resolve_stream(data, store)
    try:
        return _ModuleDecoder(data).decode()
    except BitIOError as error:
        raise DecodeError(str(error), "DEC-IO") from None
    except WorldError as error:
        raise DecodeError(str(error), "DEC-WORLD") from None
    except TypeTableError as error:
        raise DecodeError(str(error), "DEC-TABLE") from None
    except ValueError as error:
        raise DecodeError(str(error), "DEC-VALUE") from None
