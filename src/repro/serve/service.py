"""The distribution service: HTTP/JSON over the existing toolchain.

:class:`ServeService` is the application -- a table of endpoints over
the producer (:class:`~repro.driver.session.CompilationSession`) and
consumer (:func:`repro.loader.load_module`) paths plus the serving
state (module store, publish log, quotas, caches).  :class:`ServeServer`
is the transport -- a small asyncio HTTP/1.1 server (stdlib only, no
framework dependency) that parses requests, dispatches, and writes JSON
responses.  The split keeps every endpoint unit-testable without a
socket (``service.handle(...)``) while the conformance suite exercises
the real wire through ``tests/conftest.py``'s ``serve_client`` fixture.

Concurrency model: the event loop owns all serving state; CPU-bound
work (compile, decode+verify, execute) runs in one thread pool so the
accept loop keeps breathing under load.  Identical in-flight compiles
coalesce: requests are keyed on the compilation-cache key (source +
canonical pass spec + SSA flags -- the same key
:class:`~repro.driver.session.CompilationSession` uses), the first
request starts the compile, every concurrent duplicate awaits the same
future, and all of them receive bit-identical wire bytes.  Settled
compiles hit the :class:`~repro.cache.CompilationCache`; repeat
verify/run of the same bytes hit the shared
:class:`~repro.cache.VerifiedModuleCache` warm path.

Endpoints (all JSON; errors are ``{"error": {code, message, detail?}}``
with the ``SERVE-*`` status mapping from :mod:`repro.serve.errors`)::

    GET  /v1/healthz                liveness + store/log summary
    GET  /v1/stats                  counters, cache stats, quota usage
    POST /v1/compile                {source, optimize?, passes?,
                                     wire_v2?, tenant?, return_bytes?}
    POST /v1/publish                {name, source|wire_b64, ...} or
                                    {modules: [...], wire_v2?} (batch)
    GET  /v1/fetch/<digest>         stored distribution unit, base64
    GET  /v1/dict/<digest>          shared-dictionary blob, base64
    POST /v1/verify                 {digest|wire_b64}
    POST /v1/run                    {digest|wire_b64, class?, max_steps?}
    GET  /v1/log?since=N            publish-log entries + head

See ``docs/SERVE.md`` for the full wire schema.
"""

from __future__ import annotations

import asyncio
import base64
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.cache import (
    CompilationCache,
    DictionaryStore,
    TraceCache,
    VerifiedModuleCache,
)
from repro.serve.errors import ServeError
from repro.serve.log import PublishLog
from repro.serve.quota import QuotaManager, TenantLimits
from repro.serve.store import ModuleStore, is_digest, wire_digest

#: tenant assumed when a request does not name one
DEFAULT_TENANT = "public"

#: server-side ceiling on interpreter steps per /v1/run
MAX_RUN_STEPS = 50_000_000


def _b64decode(text: str, field: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception:
        raise ServeError(f"{field} is not valid base64",
                         "SERVE-BAD-REQUEST") from None


class ServeService:
    """Endpoint logic + serving state; transport-free and test-friendly."""

    def __init__(self, *, store_dir: Optional[str] = None,
                 signing_key: bytes = b"repro-serve-dev-key",
                 limits: Optional[TenantLimits] = None,
                 clock=None, log_path: Optional[str] = None,
                 max_run_steps: int = MAX_RUN_STEPS,
                 executor_workers: Optional[int] = None):
        self.store = ModuleStore(store_dir)
        self.dicts = DictionaryStore(
            f"{store_dir}/dicts" if store_dir else None)
        self.module_cache = VerifiedModuleCache()
        self.compile_cache = CompilationCache()
        # compiled hot-loop traces, shared across /v1/run requests:
        # keyed on wire digest, so a warm re-run of the same unit skips
        # the count/record cycle (see repro.interp.trace)
        self.trace_cache = TraceCache()
        self.signing_key = signing_key
        if log_path is None and store_dir is not None:
            log_path = f"{store_dir}/publish-log.jsonl"
        self.log = PublishLog(signing_key, clock=clock, path=log_path)
        self.quotas = QuotaManager(limits, clock=clock) if clock \
            else QuotaManager(limits)
        self.max_run_steps = max_run_steps
        self.counters: dict[str, int] = {
            "requests": 0, "errors": 0,
            "compile_requests": 0, "compiles_performed": 0,
            "compiles_coalesced": 0, "publishes": 0, "fetches": 0,
            "verifies": 0, "runs": 0,
        }
        self._inflight: dict[str, asyncio.Task] = {}
        self._executor_workers = executor_workers
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- plumbing -------------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._executor_workers,
                thread_name_prefix="repro-serve")
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    async def _offload(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._pool(), fn, *args)

    def handle(self, method: str, path: str, payload=None) -> dict:
        """Synchronous one-shot dispatch (unit tests, the smoke check)."""
        return asyncio.run(self.dispatch(method, path, payload))

    # -- dispatch -------------------------------------------------------

    async def dispatch(self, method: str, path: str,
                       payload=None) -> dict:
        """Route one request; raises :class:`ServeError` on rejection."""
        self.counters["requests"] += 1
        parts = urlsplit(path)
        query = {key: values[-1]
                 for key, values in parse_qs(parts.query).items()}
        payload = payload if isinstance(payload, dict) else {}
        tenant = str(payload.get("tenant")
                     or query.get("tenant") or DEFAULT_TENANT)
        try:
            route = (method.upper(), *parts.path.strip("/").split("/"))
            self.quotas.check_rate(tenant)
            if route == ("GET", "v1", "healthz"):
                return self._healthz()
            if route == ("GET", "v1", "stats"):
                return self._stats()
            if route == ("GET", "v1", "log"):
                return self._log_entries(query)
            if route[:3] == ("GET", "v1", "fetch") and len(route) == 4:
                return self._fetch(route[3])
            if route[:3] == ("GET", "v1", "dict") and len(route) == 4:
                return self._dict_blob(route[3])
            if route == ("POST", "v1", "compile"):
                return await self._compile_endpoint(payload, tenant)
            if route == ("POST", "v1", "publish"):
                return await self._publish_endpoint(payload, tenant)
            if route == ("POST", "v1", "verify"):
                return await self._verify_endpoint(payload)
            if route == ("POST", "v1", "run"):
                return await self._run_endpoint(payload)
            raise ServeError(f"no endpoint {method.upper()} {parts.path}",
                             "SERVE-ENDPOINT")
        except ServeError:
            self.counters["errors"] += 1
            raise

    # -- introspection --------------------------------------------------

    def _healthz(self) -> dict:
        return {"ok": True, "modules": len(self.store),
                "log_entries": len(self.log), "log_head": self.log.head}

    def _stats(self) -> dict:
        return {
            "counters": dict(self.counters),
            "store": self.store.stats(),
            "compile_cache": self.compile_cache.stats(),
            "module_cache": self.module_cache.stats(),
            "log": {"entries": len(self.log), "head": self.log.head},
            "quotas": [self.quotas.usage(tenant)
                       for tenant in self.quotas.tenants()],
        }

    def _log_entries(self, query: dict) -> dict:
        try:
            since = int(query.get("since", 0))
        except ValueError:
            raise ServeError("since must be an integer",
                             "SERVE-BAD-REQUEST") from None
        return {"entries": self.log.since(since), "head": self.log.head,
                "total": len(self.log)}

    # -- store reads ----------------------------------------------------

    def _fetch(self, digest: str) -> dict:
        self.counters["fetches"] += 1
        if not is_digest(digest):
            raise ServeError(f"{digest!r} is not a module digest",
                             "SERVE-BAD-REQUEST")
        wire = self.store.get(digest)
        if wire is None:
            raise ServeError(f"no module {digest[:16]}... in the store",
                             "SERVE-NOT-FOUND", {"digest": digest})
        from repro.encode.common import wire_format_version
        return {"digest": digest, "size": len(wire),
                "format": wire_format_version(wire),
                "wire_b64": base64.b64encode(wire).decode("ascii")}

    def _dict_blob(self, digest: str) -> dict:
        if not is_digest(digest):
            raise ServeError(f"{digest!r} is not a blob digest",
                             "SERVE-BAD-REQUEST")
        blob = self.dicts.get(bytes.fromhex(digest))
        if blob is None:
            raise ServeError(
                f"no dictionary blob {digest[:16]}... in the store",
                "SERVE-NOT-FOUND", {"digest": digest})
        return {"digest": digest, "size": len(blob),
                "blob_b64": base64.b64encode(blob).decode("ascii")}

    # -- compile (with coalescing) --------------------------------------

    def _session(self, payload: dict):
        from repro.driver import CompilationSession
        try:
            return CompilationSession(
                optimize=bool(payload.get("optimize", False)),
                passes=payload.get("passes"),
                filename=str(payload.get("filename", "<request>")),
                cache=self.compile_cache)
        except ValueError as error:
            raise ServeError(f"bad pass spec: {error}",
                             "SERVE-BAD-REQUEST") from None

    async def _compiled_wire(self, payload: dict,
                             tenant: str) -> tuple[bytes, bool]:
        """The v1 wire bytes for one compile request: compilation-cache
        hit, coalesced join of an identical in-flight compile, or a
        fresh compile in the pool.  Returns ``(wire, coalesced)``."""
        source = payload.get("source")
        if not isinstance(source, str) or not source:
            raise ServeError("request needs a non-empty 'source'",
                             "SERVE-BAD-REQUEST")
        self.counters["compile_requests"] += 1
        session = self._session(payload)
        key = session.cache_key(source)
        cached = self.compile_cache.get(key)
        if cached is not None:
            return cached, False
        task = self._inflight.get(key)
        if task is not None:
            self.counters["compiles_coalesced"] += 1
            return await task, True
        self.quotas.check_compile(tenant)
        task = asyncio.ensure_future(
            self._offload(self._compile_sync, session, source,
                          key, tenant))
        self._inflight[key] = task
        task.add_done_callback(
            lambda _done: self._inflight.pop(key, None))
        return await task, False

    def _compile_sync(self, session, source: str, key: str,
                      tenant: str) -> bytes:
        self.counters["compiles_performed"] += 1
        start = perf_counter()
        try:
            module = session.build_module(source)
            session.optimize(module)
            wire = session.encode(module)
        except Exception as error:
            raise ServeError(f"compilation failed: {error}",
                             "SERVE-COMPILE") from None
        finally:
            self.quotas.charge_compile(tenant, perf_counter() - start)
        self.compile_cache.put(key, wire)
        return wire

    async def _compile_endpoint(self, payload: dict,
                                tenant: str) -> dict:
        wire, coalesced = await self._compiled_wire(payload, tenant)
        format_version = "stsa1"
        if payload.get("wire_v2"):
            from repro.encode.format import encode_v2
            wire = encode_v2(wire, store=self.dicts)
            format_version = "stsa2"
        digest = self._store_charged(wire, tenant)
        result = {"digest": digest, "size": len(wire),
                  "format": format_version, "coalesced": coalesced}
        if payload.get("return_bytes"):
            result["wire_b64"] = base64.b64encode(wire).decode("ascii")
        return result

    # -- publish --------------------------------------------------------

    def _store_charged(self, wire: bytes, tenant: str) -> str:
        """Store ``wire``, charging the tenant only for *new* bytes --
        content addressing deduplicates, so re-publishing is free."""
        digest = wire_digest(wire)
        if digest not in self.store:
            self.quotas.charge_stored(tenant, len(wire))
        return self.store.put(wire)

    async def _publish_one(self, payload: dict, tenant: str) -> dict:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServeError("publish needs a module 'name'",
                             "SERVE-BAD-REQUEST")
        if "wire_b64" in payload:
            wire = _b64decode(payload["wire_b64"], "wire_b64")
            await self._load_checked(wire)  # verify before serving
        else:
            wire, _ = await self._compiled_wire(payload, tenant)
            if payload.get("wire_v2"):
                from repro.encode.format import encode_v2
                wire = encode_v2(wire, store=self.dicts)
        digest = self._store_charged(wire, tenant)
        from repro.encode.common import wire_format_version
        entry = self.log.append(
            name=name, tenant=tenant, digest=digest,
            format_version=wire_format_version(wire), size=len(wire))
        self.counters["publishes"] += 1
        return {"digest": digest, "seq": entry["seq"],
                "entry": entry, "head": self.log.head}

    async def _publish_endpoint(self, payload: dict,
                                tenant: str) -> dict:
        modules = payload.get("modules")
        if modules is None:
            return await self._publish_one(payload, tenant)
        # batch publish: compile everything (coalescing applies), then
        # factor one shared dictionary across the batch when asked
        if not isinstance(modules, list) or not modules:
            raise ServeError("'modules' must be a non-empty list",
                             "SERVE-BAD-REQUEST")
        wires = []
        for module in modules:
            if not isinstance(module, dict):
                raise ServeError("each batch entry must be an object",
                                 "SERVE-BAD-REQUEST")
            if "wire_b64" in module:
                wire = _b64decode(module["wire_b64"], "wire_b64")
                await self._load_checked(wire)
            else:
                wire, _ = await self._compiled_wire(module, tenant)
            wires.append(wire)
        dictionaries: list[str] = []
        if payload.get("wire_v2"):
            from repro.encode.format import (
                MIN_DICTIONARY_BYTES,
                build_shared_dictionary,
                encode_modules_v2,
            )
            shared = build_shared_dictionary(wires)
            wires = encode_modules_v2(wires, store=self.dicts)
            if len(shared) >= MIN_DICTIONARY_BYTES:
                from repro.encode.format import blob_digest
                dictionaries.append(blob_digest(shared).hex())
        published = []
        for module, wire in zip(modules, wires):
            entry = await self._publish_one(
                {"name": module.get("name"), "wire_b64":
                 base64.b64encode(wire).decode("ascii")}, tenant)
            published.append(entry)
        return {"published": published, "dictionaries": dictionaries,
                "head": self.log.head}

    # -- verify / run ---------------------------------------------------

    async def _load_checked(self, wire: bytes):
        """Fused verifying load (warm via the shared module cache);
        rejection surfaces as ``SERVE-REJECTED`` carrying the stable
        ``DEC-*`` code in ``detail``."""
        from repro.encode.deserializer import DecodeError

        def load():
            from repro.loader import load_module
            return load_module(wire, store=self.dicts,
                               cache=self.module_cache)
        try:
            return await self._offload(load)
        except DecodeError as error:
            raise ServeError(
                f"module rejected: {error}", "SERVE-REJECTED",
                {"code": error.code,
                 "location": error.location()}) from None

    async def _wire_from(self, payload: dict) -> bytes:
        digest = payload.get("digest")
        if digest is not None:
            if not isinstance(digest, str) or not is_digest(digest):
                raise ServeError("bad 'digest'", "SERVE-BAD-REQUEST")
            wire = self.store.get(digest)
            if wire is None:
                raise ServeError(
                    f"no module {digest[:16]}... in the store",
                    "SERVE-NOT-FOUND", {"digest": digest})
            return wire
        if "wire_b64" in payload:
            return _b64decode(payload["wire_b64"], "wire_b64")
        raise ServeError("request needs 'digest' or 'wire_b64'",
                         "SERVE-BAD-REQUEST")

    async def _verify_endpoint(self, payload: dict) -> dict:
        self.counters["verifies"] += 1
        wire = await self._wire_from(payload)
        module = await self._load_checked(wire)
        return {"ok": True, "digest": wire_digest(wire),
                "classes": len(module.classes),
                "instructions": module.instruction_count()}

    async def _run_endpoint(self, payload: dict) -> dict:
        self.counters["runs"] += 1
        wire = await self._wire_from(payload)
        module = await self._load_checked(wire)
        max_steps = min(int(payload.get("max_steps",
                                        self.max_run_steps)),
                        self.max_run_steps)
        main_class = payload.get("class")
        trace = payload.get("trace")
        if trace is not None and not isinstance(trace, (bool, int)):
            raise ServeError("'trace' must be a bool or an int "
                             "threshold", "SERVE-BAD-REQUEST")

        def execute():
            from repro.interp.interpreter import Interpreter
            if trace:
                from repro.interp.trace import (TRACE_DEFAULT_THRESHOLD,
                                                TracingInterpreter)
                threshold = trace if isinstance(trace, int) \
                    and not isinstance(trace, bool) \
                    else TRACE_DEFAULT_THRESHOLD
                interp = TracingInterpreter(
                    module, max_steps=max_steps, threshold=threshold,
                    trace_cache=self.trace_cache)
                return interp.run_main(main_class), interp.trace_stats()
            interp = Interpreter(module, max_steps=max_steps)
            return interp.run_main(main_class), None
        from repro.interp.interpreter import InterpreterError
        try:
            result, trace_stats = await self._offload(execute)
        except InterpreterError as error:
            raise ServeError(f"execution failed: {error}",
                             "SERVE-BAD-REQUEST") from None
        response = {"value": result.value, "stdout": result.stdout,
                    "steps": result.steps,
                    "exception": result.exception_name()}
        if trace_stats is not None:
            response["trace"] = trace_stats
        return response


# ======================================================================
# the transport: a minimal asyncio HTTP/1.1 server


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 413: "Payload Too Large",
            422: "Unprocessable Entity", 429: "Too Many Requests",
            500: "Internal Server Error"}

_MAX_BODY = 64 * 1024 * 1024
_MAX_HEADER_LINES = 64


class ServeServer:
    """Binds a :class:`ServeService` to a TCP port.

    ``serve_forever()`` blocks (the ``repro-cc serve`` path);
    ``start()`` runs the loop in a daemon thread and returns once the
    port is bound (the test-fixture and benchmark path), ``stop()``
    tears it down.
    """

    def __init__(self, service: ServeService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None

    # -- request handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    return
                try:
                    method, target, _version = \
                        request_line.decode("latin-1").split(None, 2)
                except ValueError:
                    await self._respond(writer, 400, {"error": {
                        "code": "SERVE-BAD-REQUEST",
                        "message": "malformed request line"}})
                    return
                headers = {}
                for _ in range(_MAX_HEADER_LINES):
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _sep, value = \
                        line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                if length > _MAX_BODY:
                    await self._respond(writer, 413, {"error": {
                        "code": "SERVE-QUOTA-BYTES",
                        "message": f"{length}-byte body exceeds the "
                                   f"{_MAX_BODY}-byte request limit"}})
                    return
                body = await reader.readexactly(length) if length \
                    else b""
                status, response = await self._dispatch_body(
                    method, target, body)
                keep_alive = headers.get(
                    "connection", "keep-alive").lower() != "close"
                await self._respond(writer, status, response,
                                    keep_alive=keep_alive)
                if not keep_alive:
                    return
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            # server shutdown with the connection parked between
            # requests (keep-alive): finish normally -- the stdlib
            # stream protocol's done-callback calls task.exception(),
            # which raises on a task that ends cancelled
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass  # shutdown races the close handshake

    async def _dispatch_body(self, method: str, target: str,
                             body: bytes) -> tuple[int, dict]:
        try:
            payload = json.loads(body) if body else None
        except json.JSONDecodeError as error:
            bad = ServeError(f"request body is not JSON: {error}",
                             "SERVE-BAD-REQUEST")
            return bad.http_status, {"error": bad.as_payload()}
        try:
            return 200, await self.service.dispatch(method, target,
                                                    payload)
        except ServeError as error:
            return error.http_status, {"error": error.as_payload()}
        except Exception as error:  # never leak a traceback as a 000
            return 500, {"error": {"code": "SERVE-BAD-REQUEST",
                                   "message": f"internal error: "
                                              f"{type(error).__name__}: "
                                              f"{error}"}}

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, *,
                       keep_alive: bool = False) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- lifecycle ------------------------------------------------------

    async def _serve(self) -> None:
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await server.serve_forever()

    def serve_forever(self) -> None:
        """Run in the calling thread until interrupted (CLI path)."""
        asyncio.run(self._serve())

    def start(self) -> "ServeServer":
        """Run in a daemon thread; returns once the port is bound."""
        def main():
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._serve())
            except asyncio.CancelledError:
                pass
            except BaseException as error:  # surface bind failures
                self._failure = error
                self._started.set()
            finally:
                # drain per-connection handlers (keep-alive clients
                # leave them parked on readline) before the loop dies,
                # or close() destroys them mid-cancel
                pending = [task for task in
                           asyncio.all_tasks(self._loop)
                           if not task.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    self._loop.run_until_complete(asyncio.gather(
                        *pending, return_exceptions=True))
                self._loop.close()
        self._thread = threading.Thread(target=main, daemon=True,
                                        name="repro-serve-server")
        self._thread.start()
        self._started.wait(timeout=10)
        if self._failure is not None:
            raise self._failure
        return self

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            try:
                for task in asyncio.all_tasks(self._loop):
                    self._loop.call_soon_threadsafe(task.cancel)
            except RuntimeError:
                pass  # the loop closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
