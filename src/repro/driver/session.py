"""The compilation session: one front end, one pass manager, one
analysis cache, one compilation cache -- every entry point goes here.

A :class:`CompilationSession` owns the pieces the old pipeline module
duplicated between ``compile_to_module`` and ``compile_to_classfiles``:

* the **front end** -- ``parse`` + semantic analysis are memoized per
  source text, so compiling the SafeTSA form and the bytecode baseline
  of the same program parses once;
* the **pass manager** -- the pipeline spec (``passes=``/``optimize=``)
  resolved once, run per function with structured
  :class:`~repro.driver.report.PassReport` timing;
* the **analysis manager** -- nullness/range/liveness/dominator results
  computed once per function and shared by the optimizer, the verifier,
  the lint driver, and the encoder's register layout;
* the **compilation cache** -- the key covers the *pass spec* (not just
  the historical three booleans), so differently optimised artifacts
  can never alias;
* **stage timing** (``parse`` / ``ssa`` / ``opt``, ``load`` on a
  cache hit -- the fused-loader consumer path) and collected
  diagnostics.

Per-function optimisation can fan out across a thread pool
(``jobs=``): functions are independent, the analysis cache is
per-function, and reports are collected in module order, so parallel
and serial sessions produce instruction-identical modules and
identical reports (``tests/test_driver.py`` enforces this over the
whole corpus).  Process-level corpus fan-out lives in
:mod:`repro.bench.pipeline`, reusing the fork-pool pattern of
:func:`repro.bench.metrics.warm_cache`.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Optional

from repro.analysis.manager import AnalysisManager
from repro.driver.manager import PassManager
from repro.driver.passes import PassSpec, effective_passes, spec_string
from repro.driver.report import PassReport, merge_stats


class CompilationSession:
    """Owns one compilation configuration end to end."""

    def __init__(self, *, optimize: bool = False, passes: PassSpec = None,
                 prune_phis: bool = True, eager_phis: bool = True,
                 filename: str = "<source>", cache=None,
                 check_after_each_pass: bool = False,
                 jobs: Optional[int] = None):
        #: resolved pass tuple; ``passes`` wins over ``optimize``
        self.passes: tuple[str, ...] = effective_passes(optimize, passes)
        self.prune_phis = prune_phis
        self.eager_phis = eager_phis
        self.filename = filename
        self.jobs = jobs
        self.pass_manager = PassManager(
            self.passes, check_after_each_pass=check_after_each_pass)
        self.analyses = AnalysisManager()
        #: wall-clock seconds per stage, accumulated across compiles
        self.stage_seconds: dict[str, float] = {}
        #: PassReports from every optimisation this session ran
        self.reports: list[PassReport] = []
        #: diagnostics collected by :meth:`lint`
        self.diagnostics: list = []
        if cache is None:
            from repro.cache import default_cache
            cache = default_cache()
        self._cache = cache or None
        self._frontend_memo: dict[str, tuple] = {}

    # -- timing ---------------------------------------------------------

    def _credit(self, stage: str, start: float) -> float:
        now = perf_counter()
        self.stage_seconds[stage] = \
            self.stage_seconds.get(stage, 0.0) + (now - start)
        return now

    # -- cache ----------------------------------------------------------

    @property
    def spec(self) -> str:
        """Canonical pipeline-spec string (cache-key component)."""
        return spec_string(self.passes)

    def cache_key(self, source: str) -> Optional[str]:
        """The compilation-cache key this session uses for ``source``,
        or None when caching is disabled.  The key covers the canonical
        pass spec plus the SSA-construction flags."""
        if self._cache is None:
            return None
        return self._cache.key(source, passes=self.spec,
                               prune_phis=self.prune_phis,
                               eager_phis=self.eager_phis)

    # -- front end ------------------------------------------------------

    def frontend(self, source: str):
        """Parsed + semantically analysed source: ``(unit, world)``.

        Memoized per source text, so the SafeTSA path and the bytecode
        baseline of the same program share one parse.
        """
        memo = self._frontend_memo.get(source)
        if memo is not None:
            return memo
        from repro.frontend.parser import parse_compilation_unit
        from repro.frontend.semantics import analyze
        start = perf_counter()
        unit = parse_compilation_unit(source, self.filename)
        world = analyze(unit)
        self._credit("parse", start)
        memo = (unit, world)
        self._frontend_memo[source] = memo
        return memo

    # -- producer pipeline ---------------------------------------------

    def build_module(self, source: str):
        """Front end + UAST lowering + SSA construction (no passes)."""
        from repro.ssa.construction import build_function
        from repro.ssa.ir import Module
        from repro.typesys.table import TypeTable
        from repro.uast.builder import UastBuilder
        unit, world = self.frontend(source)
        start = perf_counter()
        table = TypeTable(world)
        module = Module(world, table)
        uast_builder = UastBuilder(world)
        for decl in unit.classes:
            module.classes.append(decl.info)
            table.declare_class(decl.info)
            for umethod in uast_builder.build_class(decl):
                function = build_function(world, decl.info, umethod,
                                          eager_phis=self.eager_phis)
                module.add_function(function)
        _intern_used_types(module)
        if self.prune_phis:
            from repro.ssa.phi_pruning import prune_dead_phis
            for function in module.functions.values():
                prune_dead_phis(function)
        self._credit("ssa", start)
        return module

    def optimize(self, module) -> list[PassReport]:
        """Run the session's pipeline on every function.

        With ``jobs`` > 1 the per-function work fans out across a
        thread pool; reports always come back in module order, and the
        result is instruction-identical to a serial run.
        """
        if not self.passes:
            return []
        functions = list(module.functions.values())
        start = perf_counter()
        workers = self._worker_count(len(functions))
        if workers <= 1:
            reports = [self._optimize_one(module, function)
                       for function in functions]
        else:
            from concurrent.futures import ThreadPoolExecutor
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(self._optimize_one, module,
                                       function)
                           for function in functions]
                reports = [future.result() for future in futures]
        self._credit("opt", start)
        self.reports.extend(reports)
        return reports

    def _optimize_one(self, module, function) -> PassReport:
        return self.pass_manager.run_function(function, module=module,
                                              analyses=self.analyses)

    def _worker_count(self, function_count: int) -> int:
        jobs = self.jobs
        if jobs is None or jobs == 1:
            return 1
        if jobs <= 0:  # 0: size the pool to the machine
            jobs = os.cpu_count() or 1
        return max(1, min(jobs, function_count))

    def compile(self, source: str):
        """Full producer pipeline with compilation caching.

        On a hit the producer half is skipped entirely and the cached
        wire bytes are decoded -- the cheap, self-validating consumer
        path.  Misses compile, optimise, and publish the encoded bytes
        under a key covering the pass spec.
        """
        key = self.cache_key(source)
        if key is not None:
            wire = self._cache.get(key)
            if wire is not None:
                return self.load(wire)
        module = self.build_module(source)
        self.optimize(module)
        if key is not None:
            self._cache.put(key, self.encode(module))
        return module

    # -- consumer pipeline ----------------------------------------------

    def load(self, wire: bytes, *, lazy: bool = False):
        """Fused verifying load of encoded module bytes.

        The session's ``jobs`` setting fans warm-load body decoding out
        across threads exactly as it does per-function optimisation;
        ``lazy=True`` defers each body to first touch.  Sessions with
        caching disabled load without the verified-module cache too.
        """
        from repro.loader import load_module
        start = perf_counter()
        module = load_module(wire, lazy=lazy, jobs=self.jobs,
                             cache=None if self._cache is not None
                             else False)
        self._credit("load", start)
        return module

    def compile_to_classfiles(self, source: str):
        """Bytecode-baseline pipeline, sharing this session's front end."""
        from repro.jvm.codegen import compile_unit
        from repro.uast.builder import UastBuilder
        unit, world = self.frontend(source)
        uast_builder = UastBuilder(world)
        per_class = {decl.info: uast_builder.build_class(decl)
                     for decl in unit.classes}
        return compile_unit(world, per_class)

    # -- consumers sharing the analysis cache ---------------------------

    def verify(self, module) -> None:
        """Fail-fast verification reusing cached dominator trees."""
        from repro.tsa.verifier import verify_module
        verify_module(module, analyses=self.analyses)

    def lint(self, module, rules=None) -> list:
        """Lint with the shared analysis cache; diagnostics accumulate
        on :attr:`diagnostics` and are returned."""
        from repro.analysis.lint import lint_module
        found = lint_module(module, rules=rules, analyses=self.analyses)
        self.diagnostics.extend(found)
        return found

    def encode(self, module) -> bytes:
        """Wire encoding reusing cached dominator trees for layout."""
        from repro.encode.serializer import encode_module
        return encode_module(module, analyses=self.analyses)

    # -- reporting ------------------------------------------------------

    def pass_report(self) -> dict:
        """Aggregated per-pass seconds and statistics across every
        function this session optimised (consumed by CLI and bench)."""
        seconds: dict[str, float] = {}
        stats: dict = {}
        for report in self.reports:
            for name, secs in report.seconds.items():
                seconds[name] = seconds.get(name, 0.0) + secs
            merge_stats(stats, {k: v for k, v in report.stats.items()})
        return {
            "spec": self.spec,
            "functions": len(self.reports),
            "pass_seconds": {name: round(secs, 6)
                             for name, secs in seconds.items()},
            "stats": stats,
            "analysis_cache": self.analyses.stats(),
            "stage_seconds": {stage: round(secs, 6) for stage, secs
                              in self.stage_seconds.items()},
        }


def _intern_used_types(module) -> None:
    """Make sure every type referenced by an instruction is in the table."""
    from repro.typesys.types import ArrayType, Type
    table = module.type_table
    for function in module.functions.values():
        for block in function.blocks:
            for instr in block.all_instrs():
                plane = instr.plane
                if plane is not None and plane.kind != "safeidx":
                    _intern_type(table, plane.type)
                for attr in ("target_type", "ref_type", "array_type",
                             "plane_type"):
                    value = getattr(instr, attr, None)
                    if isinstance(value, Type):
                        _intern_type(table, value)


def _intern_type(table, type) -> None:
    from repro.typesys.types import ArrayType
    if type not in table:
        table.intern(type)
    if isinstance(type, ArrayType):
        _intern_type(table, type.element)
